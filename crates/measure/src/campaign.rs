//! The mobile measurement campaign (Figures 2–3) and Table-I traceroute.
//!
//! A mobile node traverses the traversed cells along the street grid; in
//! each cell it pings the anchor and the eight peers at a fixed cadence
//! for as long as it dwells there, so per-cell sample counts vary with
//! traffic flow exactly as in the paper. Samples are RIPE-Atlas-style pure
//! network RTTs: wire path + radio access, no application processing.

use crate::aggregate::CellField;
use crate::scenario::{KeyScheme, Scenario};
use bytes::Arena;
use serde::{Deserialize, Serialize};
use sixg_geo::mobility::ManhattanMobility;
use sixg_geo::CellId;
use sixg_netsim::dist::{Normal, Quantile};
use sixg_netsim::latency::DelaySampler;
use sixg_netsim::protocols::icmp::Pinger;
use sixg_netsim::radio::AccessModel;
use sixg_netsim::rng::{SimRng, StreamKey};
use sixg_netsim::topology::NodeId;
use sixg_netsim::trace::FlowTrace;
use std::cell::RefCell;

thread_local! {
    /// Worker-local column buffer for the wide scheme's batched draws: one
    /// uniforms column per shard, recycled across every shard a worker
    /// executes so the steady-state hot loop allocates nothing.
    static UNIFORM_COLUMN: RefCell<Arena<f64>> = RefCell::new(Arena::new());
}

/// Campaign configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Campaign seed (combined with the scenario seed).
    pub seed: u64,
    /// Seconds between consecutive measurements while dwelling in a cell.
    pub sample_interval_s: f64,
    /// Number of grid traversals ("passes"). The paper's campaign used
    /// multiple mobile nodes; each pass models one node's sweep.
    pub passes: u32,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self { seed: 1, sample_interval_s: 2.0, passes: 1 }
    }
}

impl CampaignConfig {
    /// A dense configuration for tight statistical reproduction (used by
    /// golden tests and the figure regeneration binaries).
    pub fn dense(seed: u64) -> Self {
        Self { seed, sample_interval_s: 2.0, passes: 30 }
    }
}

/// One (pass, cell) unit of campaign work — the shard granularity of the
/// parallel runner. The shard's random stream is derived from `(campaign
/// seed, pass, cell)`, so shards can be sampled in any order, on any
/// thread, and still produce the exact values of a sequential run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Shard {
    /// Traversal pass this shard belongs to.
    pub pass: u32,
    /// Cell visited.
    pub cell: CellId,
    /// Dwell time in the cell, seconds (sets the sample count).
    pub dwell_s: f64,
}

/// The mobile campaign runner, over any spec-compiled [`Scenario`].
///
/// Construction hoists everything shards share — the path sampler and the
/// target list — so the per-shard hot path ([`Self::collect_cell_into`])
/// does no redundant setup work.
pub struct MobileCampaign<'a> {
    scenario: &'a Scenario,
    config: CampaignConfig,
    sampler: DelaySampler<'a>,
    targets: Vec<NodeId>,
}

impl<'a> MobileCampaign<'a> {
    /// Creates a campaign over a scenario.
    pub fn new(scenario: &'a Scenario, config: CampaignConfig) -> Self {
        Self {
            scenario,
            config,
            sampler: DelaySampler::new(&scenario.topo),
            targets: scenario.measurement_targets(),
        }
    }

    /// Number of samples taken in a cell during one pass, derived from the
    /// dwell time (traffic-flow dependent) and the sampling cadence.
    ///
    /// Inputs must be finite and the cadence positive — a zero, negative
    /// or NaN cadence would turn the division into `inf`/NaN and the
    /// saturating cast into a `usize::MAX` allocation request.
    /// [`crate::spec::ScenarioSpec::validate`] rejects such specs before a
    /// campaign is built; the debug assertions catch direct API misuse.
    pub fn samples_for_dwell(&self, dwell_s: f64) -> usize {
        let interval = self.config.sample_interval_s;
        debug_assert!(
            interval.is_finite() && interval > 0.0,
            "sample_interval_s must be finite and positive, got {interval}"
        );
        debug_assert!(
            dwell_s.is_finite() && dwell_s >= 0.0,
            "dwell_s must be finite and non-negative, got {dwell_s}"
        );
        (dwell_s / interval).round().max(1.0) as usize
    }

    /// Samples of one (pass, cell) pair, in cadence order.
    ///
    /// Each sample draws from a stream keyed by (campaign seed, pass, cell,
    /// sample index), so the thread-pool runner can execute shards in any
    /// order on any worker and still produce the sequential runner's exact
    /// values — parallel and sequential runs are bitwise equal.
    pub fn collect_cell(&self, pass: u32, cell: CellId, dwell_s: f64) -> Vec<f64> {
        let mut out = Vec::new();
        self.collect_cell_into(pass, cell, dwell_s, &mut out);
        out
    }

    /// The shard random-stream key: (scenario seed, campaign seed, pass,
    /// packed cell), shared verbatim by both execution backends (the event
    /// backend substitutes its own phase label).
    pub(crate) fn shard_key(&self, label: &str, pass: u32, cell: CellId) -> StreamKey {
        StreamKey::root(self.scenario.seed)
            .with_label(label)
            .with(self.config.seed)
            .with(pass as u64)
            .with(self.scenario.cell_key(cell))
    }

    /// [`Self::collect_cell`] into a caller-owned buffer (cleared first),
    /// so tight loops — the runners visit thousands of shards — can reuse
    /// one allocation instead of growing a fresh `Vec` per shard.
    pub fn collect_cell_into(&self, pass: u32, cell: CellId, dwell_s: f64, out: &mut Vec<f64>) {
        if self.scenario.key_scheme == KeyScheme::Wide {
            return self.collect_cell_wide(pass, cell, dwell_s, out);
        }
        let s = self.scenario;
        let access = s.access_for(cell);
        let n = self.samples_for_dwell(dwell_s);
        let key = self.shard_key("campaign", pass, cell);
        out.clear();
        out.reserve(n);
        for i in 0..n {
            let mut rng = SimRng::for_stream(key.with(i as u64));
            let ti = rng.below(self.targets.len() as u64) as usize;
            let path = &s.routes[&(cell, ti)];
            let wire = self.sampler.rtt_ms(&path.hops, 64, &mut rng);
            let air = access.sample_rtt_ms(&mut rng);
            out.push(wire + air);
        }
    }

    /// The wide scheme's columnar hot path: one (pass, cell) shard becomes
    /// one RNG stream advanced once per *block* — a uniforms column filled
    /// from the shard stream, then a tight batched inverse-CDF loop
    /// ([`Quantile::inverse_cdf_block`]) over the cell's target
    /// distribution, clamped at zero.
    ///
    /// Mega-grid scenarios compile without per-cell topology (see
    /// [`Scenario`]'s compile pipeline), so a cell's round-trip latency is
    /// drawn directly from `Normal(target mean, target σ)` — the field the
    /// legacy path's wire + air calibration is constructed to reproduce.
    /// Determinism: the draw order is a pure function of (scenario seed,
    /// campaign seed, pass, wide cell key, sample index), so shards can run
    /// on any worker in any order and fold back bitwise-identically,
    /// exactly as in the legacy scheme. The uniforms column lives in a
    /// worker-local arena; the `u = 0.0` edge draw maps through
    /// `quantile(0) = -∞` to the clamp, never a panic.
    fn collect_cell_wide(&self, pass: u32, cell: CellId, dwell_s: f64, out: &mut Vec<f64>) {
        let s = self.scenario;
        let n = self.samples_for_dwell(dwell_s);
        let key = self.shard_key("campaign", pass, cell);
        let dist = Normal::new(s.targets.mean_of(cell), s.targets.std_of(cell));
        out.clear();
        out.resize(n, 0.0);
        UNIFORM_COLUMN.with(|column| {
            let mut arena = column.borrow_mut();
            arena.reset();
            let u = arena.alloc_fill(n, 0.0);
            let mut rng = SimRng::for_stream(key);
            for v in arena.get_mut(u) {
                *v = rng.unit();
            }
            dist.inverse_cdf_block(arena.get(u), out);
        });
        for v in out.iter_mut() {
            *v = v.max(0.0);
        }
    }

    /// Collects one (pass, cell) pair directly into `field`.
    pub fn run_cell(&self, pass: u32, cell: CellId, dwell_s: f64, field: &mut CellField) {
        for v in self.collect_cell(pass, cell, dwell_s) {
            field.push(cell, v);
        }
    }

    /// The scenario this campaign runs over.
    pub fn scenario(&self) -> &'a Scenario {
        self.scenario
    }

    /// The campaign configuration.
    pub fn config(&self) -> CampaignConfig {
        self.config
    }

    /// The measurement targets, in campaign order (anchor first).
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// The per-pass traversal (deterministic in scenario + campaign seed).
    pub fn traversal(&self, pass: u32) -> sixg_geo::mobility::Traversal {
        let mob = ManhattanMobility::urban(
            self.scenario.seed ^ self.config.seed.rotate_left(16) ^ pass as u64,
        );
        mob.traverse(&self.scenario.grid, &self.scenario.included)
    }

    /// The full campaign work list, in sequential execution order.
    ///
    /// Both runners consume exactly this list: the sequential runner in
    /// order, the parallel runner sampling shards on any thread and then
    /// merging batches back *in this order* — which is what makes the two
    /// bitwise interchangeable.
    pub fn shards(&self) -> Vec<Shard> {
        (0..self.config.passes)
            .flat_map(|pass| {
                self.traversal(pass)
                    .visits
                    .into_iter()
                    .map(move |v| Shard { pass, cell: v.cell, dwell_s: v.dwell_s })
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Samples of one shard, in cadence order (see [`Self::collect_cell`]).
    pub fn collect_shard(&self, shard: Shard) -> Vec<f64> {
        self.collect_cell(shard.pass, shard.cell, shard.dwell_s)
    }

    /// [`Self::collect_shard`] into a caller-owned buffer (cleared first).
    pub fn collect_shard_into(&self, shard: Shard, out: &mut Vec<f64>) {
        self.collect_cell_into(shard.pass, shard.cell, shard.dwell_s, out);
    }

    /// Runs the full campaign sequentially, shard by shard, reusing one
    /// sample buffer across shards. The accumulation order is exactly
    /// [`CellField::accumulate_ordered`] over the shard list, so the result
    /// is bitwise identical to the parallel runner's.
    pub fn run(&self) -> CellField {
        crate::parallel::run_shards_sequential(self.scenario, &self.shards(), |shard, buf| {
            self.collect_shard_into(shard, buf)
        })
    }

    /// The Table-I-style traceroute: the scenario's reference mobile node
    /// (C2 for Klagenfurt) → the anchor, rendered from the spec's rDNS
    /// vantage city.
    pub fn table1_traceroute(&self, rep: u64) -> FlowTrace {
        let s = self.scenario;
        let (ue, anchor) = s.table1_endpoints();
        let pc = sixg_netsim::routing::PathComputer::new(&s.topo, &s.as_graph);
        let pinger = Pinger::new(&pc, &s.names, &s.spec.measurement.rdns_city);
        let access = s.access_for(s.reference_cell);
        let key = StreamKey::root(s.seed).with_label("traceroute").with(rep);
        let mut rng = SimRng::for_stream(key);
        pinger.traceroute(ue, anchor, Some(access), &mut rng).expect("table1 path must route")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::klagenfurt::KlagenfurtScenario;
    use sixg_netsim::stats::Welford;

    fn scenario() -> KlagenfurtScenario {
        KlagenfurtScenario::paper(0x6B6C_7531)
    }

    #[test]
    fn default_campaign_reports_all_traversed_cells() {
        let s = scenario();
        let field = MobileCampaign::new(&s, CampaignConfig::default()).run();
        let reported = field.reported();
        assert_eq!(reported.len(), 33);
        // Skipped cells masked at 0.0.
        for cell in s.grid.cells() {
            let st = field.stats(cell);
            if s.targets.traversed(cell) {
                assert!(st.count >= 10, "cell {cell} has {}", st.count);
            } else {
                assert!(st.is_masked());
                assert_eq!(st.mean_ms, 0.0);
            }
        }
    }

    #[test]
    fn sample_counts_vary_with_traffic_flow() {
        let s = scenario();
        let c = MobileCampaign::new(&s, CampaignConfig::default());
        let field = c.run();
        let counts: Vec<u64> = field.reported().iter().map(|st| st.count).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max > min, "dwell jitter must vary counts ({min}..{max})");
    }

    #[test]
    fn dense_campaign_reproduces_figure2_anchors() {
        let s = scenario();
        let field = MobileCampaign::new(&s, CampaignConfig::dense(7)).run();
        let c1 = field.stats(CellId::parse("C1").unwrap());
        let c3 = field.stats(CellId::parse("C3").unwrap());
        assert!((c1.mean_ms - 61.0).abs() < 2.0, "C1 {}", c1.mean_ms);
        assert!((c3.mean_ms - 110.0).abs() < 3.0, "C3 {}", c3.mean_ms);
        let (min, max) = field.mean_extrema().unwrap();
        assert_eq!(min.cell.label(), "C1");
        assert_eq!(max.cell.label(), "C3");
        // Grand mean drives the paper's 270% claim.
        let gm = field.grand_mean_ms();
        assert!((gm - 74.1).abs() < 1.5, "grand mean {gm}");
    }

    #[test]
    fn dense_campaign_reproduces_figure3_anchors() {
        let s = scenario();
        let field = MobileCampaign::new(&s, CampaignConfig::dense(8)).run();
        let b3 = field.stats(CellId::parse("B3").unwrap());
        let e5 = field.stats(CellId::parse("E5").unwrap());
        assert!((b3.std_ms - 1.8).abs() < 0.5, "B3 σ {}", b3.std_ms);
        assert!((e5.std_ms - 46.4).abs() < 4.0, "E5 σ {}", e5.std_ms);
        let (min, max) = field.std_extrema().unwrap();
        assert_eq!(min.cell.label(), "B3");
        assert_eq!(max.cell.label(), "E5");
    }

    #[test]
    fn campaign_is_deterministic() {
        let s = scenario();
        let a = MobileCampaign::new(&s, CampaignConfig::default()).run();
        let b = MobileCampaign::new(&s, CampaignConfig::default()).run();
        for cell in s.grid.cells() {
            assert_eq!(a.stats(cell), b.stats(cell));
        }
    }

    #[test]
    fn table1_traceroute_matches_paper_shape() {
        let s = scenario();
        let c = MobileCampaign::new(&s, CampaignConfig::default());
        let trace = c.table1_traceroute(0);
        assert_eq!(trace.hop_count(), 10);
        // Mean RTL over repetitions ≈ 65 ms (C2's Figure-2 value).
        let mut w = Welford::new();
        for rep in 0..300 {
            w.push(c.table1_traceroute(rep).total_rtt_ms());
        }
        assert!((w.mean() - 65.0).abs() < 1.5, "mean RTL {}", w.mean());
    }

    #[test]
    fn traceroute_renders_table1_rows() {
        let s = scenario();
        let c = MobileCampaign::new(&s, CampaignConfig::default());
        let table = c.table1_traceroute(0).render_table();
        for needle in [
            "10.12.128.1",
            "unn-37-19-223-61.datapacket.com [37.19.223.61]",
            "vl204.vie-itx1-core-2.cdn77.com [185.156.45.138]",
            "zetservers.peering.cz [185.0.20.31]",
            "vie-dr2-cr1.zet.net [103.246.249.33]",
            "amanet-cust.zet.net [185.104.63.33]",
            "ae2-97.mx204-1.ix.vie.at.as39912.net [185.211.219.155]",
            "003-228-016-195.ascus.at [195.16.228.3]",
            "180-246-016-195.ascus.at [195.16.246.180]",
            "195.140.139.133",
        ] {
            assert!(table.contains(needle), "missing {needle} in\n{table}");
        }
    }

    /// The legacy per-cell stream-key packing `(col << 8) | row` must be
    /// injective over the whole packable range — a collision would hand
    /// two cells the same RNG stream and silently duplicate their samples.
    /// Larger grids select [`KeyScheme::Wide`] instead.
    #[test]
    fn cell_stream_keys_are_unique_over_packable_range() {
        let mut seen = std::collections::HashSet::new();
        for col in 0..256u32 {
            for row in 0..256u32 {
                let cell = CellId::new(col, row);
                let key = KeyScheme::Legacy.cell_key(cell);
                // Bit-for-bit the historical packing (goldens depend on it).
                assert_eq!(key, ((col as u64) << 8) | row as u64);
                assert!(seen.insert(key), "stream key collision at {cell}");
            }
        }
        assert_eq!(seen.len(), 256 * 256);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "sample_interval_s must be finite and positive")]
    fn zero_sample_interval_is_a_debug_assert() {
        let s = scenario();
        let c = MobileCampaign::new(
            &s,
            CampaignConfig { sample_interval_s: 0.0, ..Default::default() },
        );
        let _ = c.samples_for_dwell(10.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "dwell_s must be finite and non-negative")]
    fn nan_dwell_is_a_debug_assert() {
        let s = scenario();
        let c = MobileCampaign::new(&s, CampaignConfig::default());
        let _ = c.samples_for_dwell(f64::NAN);
    }

    #[test]
    fn more_passes_more_samples() {
        let s = scenario();
        let one = MobileCampaign::new(&s, CampaignConfig { passes: 1, ..Default::default() }).run();
        let three =
            MobileCampaign::new(&s, CampaignConfig { passes: 3, ..Default::default() }).run();
        assert!(three.total_samples() > 2 * one.total_samples());
    }
}
