//! The generic, spec-compiled measurement scenario.
//!
//! [`Scenario`] is the single runtime shape every measurement site compiles
//! into: a router-level [`Topology`] with AS business relationships, a
//! labelled grid with a density raster, one mobile UE per traversed cell
//! behind an operator gateway, a measurement anchor (plus optional fixed
//! peers and a cloud reference), and per-cell radio access models
//! calibrated so the campaign *reproduces* the spec's target field.
//!
//! Scenarios are built from declarative [`ScenarioSpec`]s
//! ([`Scenario::from_spec`]); the committed sites — Klagenfurt
//! ([`Scenario::paper`]), Skopje ([`Scenario::projected`]) and the
//! megacity ([`Scenario::megacity`]) — are thin wrappers over the spec
//! files under `specs/`. The compilation pipeline is deliberately
//! deterministic in spec order: hops, links, UEs and peers are inserted
//! exactly in the order the spec lists them, so node/link identifiers —
//! and therefore every routed path and every random stream — are a pure
//! function of (spec, seed). The Klagenfurt golden suite pins this to the
//! bit.

use crate::spec::{
    parse_name_style, parse_node_kind, PositionDef, ScenarioSpec, SpecError, TargetDef,
};
use serde::{Deserialize, Serialize};
use sixg_geo::population::SPARSE_THRESHOLD;
use sixg_geo::{CellId, DensityRaster, GeoPoint, GridSpec};
use sixg_netsim::latency::DelaySampler;
use sixg_netsim::names::{NameRegistry, OrgProfile};
use sixg_netsim::radio::{AccessModel, CellEnv, FiveGAccess};
use sixg_netsim::rng::{SimRng, StreamKey};
use sixg_netsim::routing::{AsGraph, PathComputer, RoutedPath};
use sixg_netsim::stats::Welford;
use sixg_netsim::topology::{Asn, LinkParams, NodeId, NodeKind, Topology};
use std::collections::BTreeMap;

/// Per-cell calibration targets (mean/σ of the round-trip latency field).
///
/// A dynamic `[row][col]` field over an arbitrary grid; `0.0` mean marks a
/// non-traversed cell, exactly as the paper's Figure 2 renders skipped
/// cells. Dense scenario targets (the published Klagenfurt matrices) store
/// explicit values; projected scenarios evaluate their model into this
/// shape once at compile time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetField {
    cols: u32,
    rows: u32,
    /// Mean RTL targets, ms, row-major.
    mean: Vec<f64>,
    /// Standard-deviation targets, ms, row-major.
    std: Vec<f64>,
}

impl TargetField {
    /// Builds a field from row-major matrices. Panics when dimensions are
    /// inconsistent (spec validation reports this recoverably first).
    pub fn from_rows(mean: Vec<Vec<f64>>, std: Vec<Vec<f64>>) -> Self {
        assert!(!mean.is_empty(), "target field needs at least one row");
        let rows = mean.len();
        let cols = mean[0].len();
        assert!(cols > 0, "target field needs at least one column");
        assert_eq!(std.len(), rows, "mean/std row count mismatch");
        for (m, s) in mean.iter().zip(&std) {
            assert_eq!(m.len(), cols, "ragged mean matrix");
            assert_eq!(s.len(), cols, "ragged std matrix");
        }
        Self {
            cols: cols as u32,
            rows: rows as u32,
            mean: mean.into_iter().flatten().collect(),
            std: std.into_iter().flatten().collect(),
        }
    }

    /// An all-zero (fully masked) field over a grid.
    pub fn zero(grid: &GridSpec) -> Self {
        let n = grid.len();
        Self { cols: grid.cols, rows: grid.rows, mean: vec![0.0; n], std: vec![0.0; n] }
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn dims(&self) -> (u32, u32) {
        (self.cols, self.rows)
    }

    fn idx(&self, cell: CellId) -> usize {
        assert!(
            cell.col < self.cols && cell.row < self.rows,
            "cell {cell} outside {}×{} target field",
            self.cols,
            self.rows
        );
        cell.row as usize * self.cols as usize + cell.col as usize
    }

    /// Target mean for a cell (0.0 = not traversed).
    pub fn mean_of(&self, cell: CellId) -> f64 {
        self.mean[self.idx(cell)]
    }

    /// Target σ for a cell.
    pub fn std_of(&self, cell: CellId) -> f64 {
        self.std[self.idx(cell)]
    }

    /// Overwrites one cell's targets (ablations; `mean = 0.0` masks).
    pub fn set(&mut self, cell: CellId, mean: f64, std: f64) {
        let i = self.idx(cell);
        self.mean[i] = mean;
        self.std[i] = std;
    }

    /// True when the cell was traversed by the campaign.
    pub fn traversed(&self, cell: CellId) -> bool {
        self.mean_of(cell) > 0.0
    }

    /// All traversed cells, row-major.
    pub fn traversed_cells(&self, grid: &GridSpec) -> Vec<CellId> {
        grid.cells().filter(|c| self.traversed(*c)).collect()
    }

    /// Grand mean over traversed cells.
    pub fn grand_mean(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &v in &self.mean {
            if v > 0.0 {
                sum += v;
                n += 1;
            }
        }
        sum / n as f64
    }

    /// The mean matrix as row-major rows (the spec's explicit form).
    pub fn mean_rows(&self) -> Vec<Vec<f64>> {
        self.mean.chunks(self.cols as usize).map(<[f64]>::to_vec).collect()
    }

    /// The σ matrix as row-major rows.
    pub fn std_rows(&self) -> Vec<Vec<f64>> {
        self.std.chunks(self.cols as usize).map(<[f64]>::to_vec).collect()
    }

    /// Evaluates a spec's target definition over a grid, masking skipped
    /// cells to `0.0`.
    pub fn from_def(def: &TargetDef, grid: &GridSpec, skipped: &[CellId]) -> Self {
        let mut field = match def {
            TargetDef::Explicit { mean, std } => Self::from_rows(mean.clone(), std.clone()),
            TargetDef::Projected {
                floor_ms,
                gradient_ms,
                hotspot_ms,
                hotspot,
                std_factor,
                std_floor_ms,
            } => {
                let hotspot = CellId::parse(hotspot).expect("validated hotspot label");
                let mut field = Self::zero(grid);
                for cell in grid.cells() {
                    let diag = (cell.col as f64 / (grid.cols - 1).max(1) as f64
                        + cell.row as f64 / (grid.rows - 1).max(1) as f64)
                        / 2.0;
                    let peak = if cell == hotspot { *hotspot_ms } else { 0.0 };
                    let mean = floor_ms + gradient_ms * diag + peak;
                    let std = (std_factor * (mean - floor_ms)).max(*std_floor_ms);
                    field.set(cell, mean, std);
                }
                field
            }
        };
        for &cell in skipped {
            field.set(cell, 0.0, 0.0);
        }
        field
    }
}

/// Versioned packing of a cell's coordinates into the 64-bit stream-key
/// component that seeds every per-cell RNG stream.
///
/// The scheme is part of the determinism contract: every committed golden
/// number was produced under [`KeyScheme::Legacy`], so specs that were
/// expressible before the widening (grids ≤ [`crate::spec::PACKABLE_GRID_DIM`]
/// per side) must keep that packing bit-for-bit. Larger grids — where the
/// 8-bit row field would collide across cells — select [`KeyScheme::Wide`]
/// and with it the columnar sampling path. The choice is a pure function
/// of the grid dimensions, so a spec can never straddle schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeyScheme {
    /// `(col << 8) | row`: the historical packing. Collision-free exactly
    /// for grids up to 256 cells per side; all pre-widening golden bits
    /// were produced under it.
    Legacy,
    /// `(col << 32) | row`: collision-free for any 32-bit grid. Selecting
    /// this scheme also selects the columnar (batched inverse-CDF)
    /// sampling path.
    Wide,
}

impl KeyScheme {
    /// The scheme a grid of the given dimensions uses. Pure function of
    /// the dimensions — the versioning rule of the determinism contract.
    pub fn for_dims(cols: u32, rows: u32) -> Self {
        let cap = crate::spec::PACKABLE_GRID_DIM;
        if cols <= cap && rows <= cap {
            KeyScheme::Legacy
        } else {
            KeyScheme::Wide
        }
    }

    /// The scheme `grid` uses.
    pub fn for_grid(grid: &GridSpec) -> Self {
        Self::for_dims(grid.cols, grid.rows)
    }

    /// Deterministic stream-key component of a cell under this scheme.
    pub fn cell_key(self, cell: CellId) -> u64 {
        match self {
            KeyScheme::Legacy => ((cell.col as u64) << 8) | cell.row as u64,
            KeyScheme::Wide => ((cell.col as u64) << 32) | cell.row as u64,
        }
    }
}

/// The assembled scenario — everything a campaign needs to run.
pub struct Scenario {
    /// Scenario name (from the spec).
    pub name: String,
    /// Router-level topology.
    pub topo: Topology,
    /// AS business relationships.
    pub as_graph: AsGraph,
    /// Naming registry (pinned Table-I style names plus org profiles).
    pub names: NameRegistry,
    /// The measurement grid.
    pub grid: GridSpec,
    /// Synthetic population-density raster.
    pub density: DensityRaster,
    /// Traversed cells, row-major.
    pub included: Vec<CellId>,
    /// Per-cell mobile UE.
    pub ue: BTreeMap<CellId, NodeId>,
    /// The measurement anchor.
    pub anchor: NodeId,
    /// The operator gateway every UE attaches to.
    pub gw: NodeId,
    /// Fixed peer nodes of the campaign (may be empty).
    pub peers: Vec<NodeId>,
    /// Cloud reference node used by the wired baseline, if the spec has one.
    pub cloud: Option<NodeId>,
    /// Calibration targets.
    pub targets: TargetField,
    /// Calibrated per-cell access models.
    pub access: BTreeMap<CellId, FiveGAccess>,
    /// Cached routes UE(cell) → target index (anchor first, then peers).
    pub routes: BTreeMap<(CellId, usize), RoutedPath>,
    /// Scenario seed.
    pub seed: u64,
    /// Cell of the reference mobile node (Table-I-style endpoint).
    pub reference_cell: CellId,
    /// Which stream-key packing (and with it, which sampling path) this
    /// scenario uses — a pure function of the grid dimensions.
    pub key_scheme: KeyScheme,
    /// The spec this scenario was compiled from (seed policy, workload mix).
    pub spec: ScenarioSpec,
}

impl Scenario {
    /// Compiles a declarative spec into a runnable scenario.
    ///
    /// Validates first and refuses invalid specs with the first violation;
    /// use [`ScenarioSpec::validate`] to collect all of them.
    pub fn from_spec(spec: &ScenarioSpec) -> Result<Self, SpecError> {
        let mut errors = spec.validate();
        if !errors.is_empty() {
            return Err(errors.remove(0));
        }
        Ok(Self::compile(spec))
    }

    /// Parses and compiles a spec from JSON text.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        Self::from_spec(&ScenarioSpec::from_json(text)?)
    }

    /// Loads, parses and compiles a spec file from disk.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            SpecError::new("$", format!("cannot read spec file {}: {e}", path.display()))
        })?;
        Self::from_json(&text)
    }

    /// The compilation pipeline. The spec is already validated.
    fn compile(spec: &ScenarioSpec) -> Self {
        let seed = spec.seed;
        let grid = GridSpec::new(
            GeoPoint::new(spec.grid.origin_lat, spec.grid.origin_lon),
            spec.grid.cols,
            spec.grid.rows,
            spec.grid.cell_km,
        );
        let skipped: Vec<CellId> = spec
            .skipped_cells
            .iter()
            .map(|l| CellId::parse(l).expect("validated skip label"))
            .collect();
        let targets = TargetField::from_def(&spec.targets, &grid, &skipped);
        let included = targets.traversed_cells(&grid);
        assert!(
            !included.is_empty(),
            "spec {} traverses no cells (all targets zero or skipped)",
            spec.name
        );

        let key_scheme = KeyScheme::for_grid(&grid);

        // Density: monocentric synthetic profile made consistent with the
        // traversal plan — every traversed cell dense, every skipped cell
        // sparse (the paper ties its 0.0 cells to the <1000 /km² threshold).
        // Jitter folds the scheme's cell key into the seed; under the
        // legacy scheme the key's bit-fields are disjoint, so the XOR is
        // bit-identical to the historical `seed ^ (col << 8) ^ row` form.
        let d = &spec.density;
        let mut density =
            DensityRaster::synth_urban(&grid, d.core_col, d.core_row, d.peak, d.decay_cells);
        for cell in grid.cells() {
            let current = density.density(cell);
            let jitter =
                (sixg_geo::mobility::mix64(seed ^ key_scheme.cell_key(cell)) % d.jitter_mod) as f64;
            if targets.traversed(cell) && current < SPARSE_THRESHOLD {
                density.set_density(cell, d.dense_fill + jitter);
            } else if !targets.traversed(cell) && current >= SPARSE_THRESHOLD {
                density.set_density(cell, d.sparse_fill + jitter);
            }
        }

        // Topology: hops, links, UEs, peers — in spec order, so node and
        // link identifiers are a pure function of the spec.
        let mut topo = Topology::new();
        let mut names = NameRegistry::new();
        let mut hop_ids: BTreeMap<&str, NodeId> = BTreeMap::new();
        let resolve_pos = |pos: &PositionDef| -> GeoPoint {
            match pos {
                PositionDef::Geo { lat, lon } => GeoPoint::new(*lat, *lon),
                PositionDef::Cell { cell, bearing_deg, offset_km } => {
                    let cell = CellId::parse(cell).expect("validated cell label");
                    let centroid = grid.centroid(cell);
                    if *offset_km == 0.0 {
                        centroid
                    } else {
                        centroid.destination(*bearing_deg, *offset_km)
                    }
                }
            }
        };
        for hop in &spec.hops {
            let kind = parse_node_kind(&hop.kind).expect("validated node kind");
            let id =
                topo.add_node(kind, hop.name.clone(), resolve_pos(&hop.position), Asn(hop.asn));
            if let Some(ip) = hop.ip {
                names.pin_ip(id, ip);
            }
            if let Some(rdns) = &hop.rdns {
                names.pin_name(id, rdns.clone());
            }
            hop_ids.insert(hop.name.as_str(), id);
        }
        for org in &spec.orgs {
            names.register_org(
                Asn(org.asn),
                OrgProfile {
                    domain: org.domain.clone(),
                    cc: org.cc.clone(),
                    style: parse_name_style(&org.style).expect("validated name style"),
                    prefix: org.prefix,
                },
            );
        }
        for link in &spec.links {
            topo.add_link(
                hop_ids[link.a.as_str()],
                hop_ids[link.b.as_str()],
                LinkParams {
                    bandwidth_bps: link.bandwidth_bps,
                    utilisation: link.utilisation,
                    extra_ms: link.extra.mean_ms(),
                },
            );
        }

        let gw = hop_ids[spec.ue.gateway.as_str()];
        let mut ue = BTreeMap::new();
        // Wide-scheme (mega-grid) scenarios skip per-cell compilation: a
        // million UE nodes, routed paths and calibration sweeps are
        // infeasible and unnecessary — the columnar sampling path draws
        // each cell's round-trip latency directly from the target field's
        // closed form (see `MobileCampaign::collect_cell_into`). Only the
        // backbone topology (hops, links, peers) is materialised.
        let per_cell_cells: &[CellId] =
            if key_scheme == KeyScheme::Legacy { &included } else { &[] };
        for &cell in per_cell_cells {
            let id = topo.add_node(
                NodeKind::UserEquipment,
                format!("{}{}", spec.ue.name_prefix, cell.label().to_lowercase()),
                grid.centroid(cell),
                topo.node(gw).asn,
            );
            topo.add_link(
                id,
                gw,
                LinkParams {
                    bandwidth_bps: spec.ue.bandwidth_bps,
                    utilisation: spec.ue.utilisation,
                    extra_ms: spec.ue.extra.mean_ms(),
                },
            );
            ue.insert(cell, id);
        }

        let mut peers = Vec::with_capacity(spec.peers.cells.len());
        if !spec.peers.cells.is_empty() {
            let attach = hop_ids[spec.peers.attach.as_str()];
            for (i, label) in spec.peers.cells.iter().enumerate() {
                let cell = CellId::parse(label).expect("validated peer cell");
                // Offset peers from centroids so they are not co-located
                // with the mobile UE of the same cell.
                let pos =
                    grid.centroid(cell).destination(spec.peers.bearing_deg, spec.peers.offset_km);
                let id = topo.add_node(
                    NodeKind::Server,
                    format!("{}{}", spec.peers.name_prefix, i + 1),
                    pos,
                    topo.node(attach).asn,
                );
                topo.add_link(
                    id,
                    attach,
                    LinkParams {
                        bandwidth_bps: spec.peers.bandwidth_bps,
                        utilisation: spec.peers.utilisation,
                        extra_ms: spec.peers.extra.mean_ms(),
                    },
                );
                peers.push(id);
            }
        }

        let mut as_graph = AsGraph::new();
        for rel in &spec.as_relations {
            match rel.kind.as_str() {
                "transit" => as_graph.add_transit(Asn(rel.a), Asn(rel.b)),
                "peering" => as_graph.add_peering(Asn(rel.a), Asn(rel.b)),
                other => unreachable!("validated relation kind, got {other}"),
            }
        }

        let anchor = hop_ids[spec.measurement.anchor.as_str()];
        let cloud = spec.measurement.cloud.as_deref().map(|name| hop_ids[name]);
        let reference_cell =
            CellId::parse(&spec.measurement.reference_cell).expect("validated reference cell");

        let mut scenario = Self {
            name: spec.name.clone(),
            topo,
            as_graph,
            names,
            grid,
            density,
            included,
            ue,
            anchor,
            gw,
            peers,
            cloud,
            targets,
            access: BTreeMap::new(),
            routes: BTreeMap::new(),
            seed,
            reference_cell,
            key_scheme,
            spec: spec.clone(),
        };
        if scenario.key_scheme == KeyScheme::Legacy {
            scenario.compute_routes();
            scenario.calibrate();
        }
        scenario
    }

    /// Recomputes the cached routes after a topology or policy mutation
    /// (used by the recommendation engines when they add peering links or
    /// UPF breakouts).
    pub fn refresh_routes(&mut self) {
        self.routes.clear();
        self.compute_routes();
    }

    /// The extra-delay distribution of every link, indexed by `LinkId`.
    ///
    /// The compilation pipeline inserts links in a fixed order — the spec's
    /// `links` array, then one UE access link per traversed cell, then the
    /// peer access links — so the spec's declarative
    /// [`DistSpec`](sixg_netsim::dist::DistSpec)s can be
    /// recovered per link id. The analytic sampler collapses each to its
    /// mean (`LinkParams::extra_ms`); the event backend samples the full
    /// distribution. Links added after compilation (peering/UPF
    /// recommendations) fall back to a constant at their stored mean, which
    /// keeps the two conventions consistent in expectation.
    pub fn link_extra_specs(&self) -> Vec<sixg_netsim::dist::DistSpec> {
        use sixg_netsim::dist::DistSpec;
        let mut extras: Vec<DistSpec> = self
            .topo
            .links()
            .iter()
            .map(|l| DistSpec::Constant { ms: l.params.extra_ms })
            .collect();
        let mut next = 0usize;
        for link in &self.spec.links {
            extras[next] = link.extra;
            next += 1;
        }
        for _ in self.ue.values() {
            extras[next] = self.spec.ue.extra;
            next += 1;
        }
        for _ in &self.peers {
            extras[next] = self.spec.peers.extra;
            next += 1;
        }
        extras
    }

    /// Measurement targets in campaign order: anchor first, then peers.
    pub fn measurement_targets(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(1 + self.peers.len());
        v.push(self.anchor);
        v.extend(self.peers.iter().copied());
        v
    }

    fn compute_routes(&mut self) {
        let pc = PathComputer::new(&self.topo, &self.as_graph);
        let targets = self.measurement_targets();
        for (&cell, &ue) in &self.ue {
            for (ti, &t) in targets.iter().enumerate() {
                let path = pc
                    .route(ue, t)
                    .unwrap_or_else(|| panic!("no route from {cell} to target {ti}"));
                self.routes.insert((cell, ti), path);
            }
        }
    }

    /// Empirical wire-path RTT statistics (mean, variance) for a cell's
    /// target mixture, from `n` deterministic samples on the spec's
    /// calibration stream.
    pub fn wire_rtt_stats(&self, cell: CellId, n: usize) -> (f64, f64) {
        let sampler = DelaySampler::new(&self.topo);
        let targets = self.measurement_targets();
        let key = StreamKey::root(self.seed)
            .with_label(&self.spec.calibration.label)
            .with(self.cell_key(cell));
        let mut rng = SimRng::for_stream(key);
        let mut w = Welford::new();
        for i in 0..n {
            let ti = i % targets.len();
            let path = &self.routes[&(cell, ti)];
            w.push(sampler.rtt_ms(&path.hops, 64, &mut rng));
        }
        (w.mean(), w.variance())
    }

    /// Inverts the analytic 5G access model per traversed cell so that wire
    /// path plus air interface reproduces the target mean/σ field.
    fn calibrate(&mut self) {
        let samples = self.spec.calibration.samples as usize;
        for cell in self.included.clone() {
            let (wire_mean, wire_var) = self.wire_rtt_stats(cell, samples);
            let target_mean = self.targets.mean_of(cell);
            let target_std = self.targets.std_of(cell);
            let access_mean = (target_mean - wire_mean).max(1.0);
            let access_var = (target_std * target_std - wire_var).max(0.01);
            self.access.insert(cell, FiveGAccess::fit(access_mean, access_var.sqrt()));
        }
    }

    /// Deterministic stream-key component of a cell under this scenario's
    /// [`KeyScheme`].
    pub fn cell_key(&self, cell: CellId) -> u64 {
        self.key_scheme.cell_key(cell)
    }

    /// Calibrated access model for a traversed cell.
    pub fn access_for(&self, cell: CellId) -> &FiveGAccess {
        self.access.get(&cell).unwrap_or_else(|| panic!("cell {cell} not traversed / calibrated"))
    }

    /// A neutral 5G access model for nodes outside calibrated cells.
    pub fn default_access(&self) -> FiveGAccess {
        FiveGAccess::new(CellEnv::new(0.4, 0.3))
    }

    /// The reference endpoints: mobile UE in the spec's reference cell and
    /// the anchor (C2 → E3 for the Klagenfurt Table I).
    pub fn table1_endpoints(&self) -> (NodeId, NodeId) {
        (self.ue[&self.reference_cell], self.anchor)
    }

    /// The grid cell containing the anchor.
    pub fn anchor_cell(&self) -> CellId {
        self.grid.locate(self.topo.node(self.anchor).pos).expect("anchor inside grid")
    }

    /// Runs a uniform campaign: `samples_per_cell` pings from every
    /// traversed cell across the target mixture, aggregated per cell.
    ///
    /// Simpler than the mobility-driven [`crate::campaign::MobileCampaign`]
    /// (no traversal, no dwell-time variation) — useful for projected
    /// scenarios and quick field checks.
    pub fn run_uniform_campaign(&self, samples_per_cell: usize, seed: u64) -> crate::CellField {
        let mut field = crate::CellField::new(self.grid.clone());
        let sampler = DelaySampler::new(&self.topo);
        let targets = self.measurement_targets();
        for &cell in &self.included {
            let access = &self.access[&cell];
            let key = StreamKey::root(self.seed)
                .with_label("uniform-campaign")
                .with(seed)
                .with(self.cell_key(cell));
            let mut rng = SimRng::for_stream(key);
            for i in 0..samples_per_cell {
                let path = &self.routes[&(cell, i % targets.len())];
                let rtt = sampler.rtt_ms(&path.hops, 64, &mut rng) + access.sample_rtt_ms(&mut rng);
                field.push(cell, rtt);
            }
        }
        field
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_field_round_trips_rows() {
        let mean = vec![vec![0.0, 61.0], vec![70.0, 0.0]];
        let std = vec![vec![0.0, 4.1], vec![8.5, 0.0]];
        let t = TargetField::from_rows(mean.clone(), std.clone());
        assert_eq!(t.dims(), (2, 2));
        assert_eq!(t.mean_rows(), mean);
        assert_eq!(t.std_rows(), std);
        assert_eq!(t.mean_of(CellId::new(1, 0)), 61.0);
        assert_eq!(t.std_of(CellId::new(0, 1)), 8.5);
        assert!(t.traversed(CellId::new(1, 0)));
        assert!(!t.traversed(CellId::new(0, 0)));
        assert!((t.grand_mean() - 65.5).abs() < 1e-12);
    }

    #[test]
    fn projected_field_matches_formula_and_masks_skips() {
        let grid = GridSpec::new(GeoPoint::new(42.02, 21.38), 5, 6, 1.0);
        let def = TargetDef::Projected {
            floor_ms: 66.0,
            gradient_ms: 22.0,
            hotspot_ms: 26.0,
            hotspot: "C3".into(),
            std_factor: 0.75,
            std_floor_ms: 2.0,
        };
        let skipped = [CellId::parse("A1").unwrap()];
        let t = TargetField::from_def(&def, &grid, &skipped);
        // A1 masked.
        assert_eq!(t.mean_of(CellId::parse("A1").unwrap()), 0.0);
        // B1: diag = (1/4 + 0/5)/2 = 0.125 → 66 + 22·0.125.
        let b1 = t.mean_of(CellId::parse("B1").unwrap());
        assert!((b1 - (66.0 + 22.0 * 0.125)).abs() < 1e-12, "{b1}");
        // The hotspot carries its extra peak and the coupled σ.
        let c3 = CellId::parse("C3").unwrap();
        assert!(t.mean_of(c3) > 26.0 + 66.0);
        assert!((t.std_of(c3) - 0.75 * (t.mean_of(c3) - 66.0)).abs() < 1e-12);
        // Far from the hotspot the σ floor applies.
        assert_eq!(t.std_of(CellId::parse("B1").unwrap()), 0.75 * 22.0 * 0.125);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrices_rejected() {
        let _ = TargetField::from_rows(
            vec![vec![1.0, 2.0], vec![3.0]],
            vec![vec![0.1, 0.2], vec![0.3]],
        );
    }
}
