//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] describes a measurement campaign end to end as plain
//! data — grid geometry and skipped cells, the synthetic density raster,
//! radio calibration targets, the transit-chain topology (named hops with
//! per-link delay distributions via [`sixg_netsim::dist::DistSpec`]), the
//! AS business relationships, the workload mix, and the seed policy. Specs
//! serialise to JSON (`specs/*.json` in the repository root), load back
//! with [`ScenarioSpec::from_json`], and compile into a runnable
//! [`crate::scenario::Scenario`] via [`crate::scenario::Scenario::from_spec`].
//!
//! Adding a city is therefore a *data* problem: write a spec file, run it
//! with `sixg-cli run path/to/spec.json`. The committed Klagenfurt and
//! Skopje scenarios are themselves thin wrappers over spec files, pinned
//! bitwise by the golden suite.
//!
//! Decoding is strict and diagnostic: every error carries the JSON path it
//! occurred at (`$.links[3].extra`), and [`ScenarioSpec::validate`] checks
//! cross-field invariants (link endpoints must name declared hops, skipped
//! cells must not overlap, delays must be non-negative, workload shares
//! must sum to one, …) before any topology is built.

use serde::{Serialize, Value};
use sixg_geo::population::SPARSE_THRESHOLD;
use sixg_geo::CellId;
use sixg_netsim::dist::DistSpec;
use sixg_netsim::names::NameStyle;
use sixg_netsim::topology::NodeKind;
use std::fmt;

/// Machine-readable classification of a [`SpecError`] — the wire protocol
/// and CLI exit-code mapping branch on this, never on message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The payload was not parseable JSON at all.
    InvalidJson,
    /// Structurally malformed: wrong type or missing member at the path.
    Schema,
    /// Well-formed but semantically invalid (range, cross-field invariant).
    Validation,
    /// A request field combination no runner honors (facade-level).
    Conflict,
    /// A filesystem or store failure surfaced through the spec pipeline.
    Io,
}

impl ErrorCode {
    /// The stable wire tag (`"invalid_json"`, `"schema"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::InvalidJson => "invalid_json",
            ErrorCode::Schema => "schema",
            ErrorCode::Validation => "validation",
            ErrorCode::Conflict => "conflict",
            ErrorCode::Io => "io",
        }
    }

    /// Parses a wire tag back into a code.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "invalid_json" => ErrorCode::InvalidJson,
            "schema" => ErrorCode::Schema,
            "validation" => ErrorCode::Validation,
            "conflict" => ErrorCode::Conflict,
            "io" => ErrorCode::Io,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A spec decoding or validation error, anchored to a JSON path.
#[derive(Debug, Clone, Eq)]
pub struct SpecError {
    /// JSON path of the offending element (`$.hops[2].kind`).
    pub path: String,
    /// What went wrong and, where possible, what would fix it.
    pub message: String,
    /// Machine-readable classification (defaults to
    /// [`ErrorCode::Validation`]; see [`SpecError::coded`]).
    pub code: ErrorCode,
}

/// Two errors are the same error when they anchor the same complaint at
/// the same path; the code is derived classification metadata, so it does
/// not participate (existing equality assertions keep their meaning).
impl PartialEq for SpecError {
    fn eq(&self, other: &Self) -> bool {
        self.path == other.path && self.message == other.message
    }
}

impl SpecError {
    /// Creates an error at a path, classified [`ErrorCode::Validation`].
    pub fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self { path: path.into(), message: message.into(), code: ErrorCode::Validation }
    }

    /// Creates an error at a path with an explicit classification.
    pub fn coded(code: ErrorCode, path: impl Into<String>, message: impl Into<String>) -> Self {
        Self { path: path.into(), message: message.into(), code }
    }

    /// Reclassifies the error.
    pub fn with_code(mut self, code: ErrorCode) -> Self {
        self.code = code;
        self
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at {}: {}", self.path, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Grid geometry: where the sector sits and how it is cut into cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GridDef {
    /// Latitude of the north-west corner of cell `A1`.
    pub origin_lat: f64,
    /// Longitude of the north-west corner of cell `A1`.
    pub origin_lon: f64,
    /// Number of columns (west→east, labelled `A`, `B`, …, `Z`, `AA`, …).
    pub cols: u32,
    /// Number of rows (north→south, labelled `1`, `2`, …).
    pub rows: u32,
    /// Cell side length, kilometres.
    pub cell_km: f64,
}

/// Synthetic population-density raster parameters (monocentric model plus
/// the traversal-consistency overrides the Klagenfurt scenario applies).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DensityDef {
    /// Column index of the urban core (may be fractional).
    pub core_col: f64,
    /// Row index of the urban core.
    pub core_row: f64,
    /// Peak density at the core, inhabitants per km².
    pub peak: f64,
    /// Exponential decay length, in cells.
    pub decay_cells: f64,
    /// Density floor applied to traversed cells the synthetic profile left
    /// sparse (must clear the 1000 /km² threshold).
    pub dense_fill: f64,
    /// Density ceiling applied to skipped cells the profile left dense.
    pub sparse_fill: f64,
    /// Modulus of the deterministic per-cell jitter added to the fills.
    pub jitter_mod: u64,
}

impl Default for DensityDef {
    fn default() -> Self {
        Self {
            core_col: 2.5,
            core_row: 3.0,
            peak: 4800.0,
            decay_cells: 2.3,
            dense_fill: 1020.0,
            sparse_fill: 720.0,
            jitter_mod: 200,
        }
    }
}

/// Per-cell radio calibration targets.
#[derive(Debug, Clone, PartialEq)]
pub enum TargetDef {
    /// Explicit row-major mean/σ matrices (the published Klagenfurt field).
    /// `0.0` mean marks a non-traversed cell.
    Explicit {
        /// Mean RTL targets, ms, `[row][col]`.
        mean: Vec<Vec<f64>>,
        /// Standard-deviation targets, ms.
        std: Vec<Vec<f64>>,
    },
    /// A projected field model: regional floor plus an urban gradient along
    /// the grid diagonal plus one congested hotspot (the Skopje model).
    Projected {
        /// Latency floor for the region, ms.
        floor_ms: f64,
        /// Gradient amplitude across the grid diagonal, ms.
        gradient_ms: f64,
        /// Hotspot peak on top of the projected mean, ms.
        hotspot_ms: f64,
        /// Hotspot cell label.
        hotspot: String,
        /// σ per ms of load above the floor.
        std_factor: f64,
        /// σ floor, ms.
        std_floor_ms: f64,
    },
}

impl Serialize for TargetDef {
    fn to_value(&self) -> Value {
        match self {
            TargetDef::Explicit { mean, std } => Value::Object(vec![
                ("kind".into(), Value::String("explicit".into())),
                ("mean".into(), mean.to_value()),
                ("std".into(), std.to_value()),
            ]),
            TargetDef::Projected {
                floor_ms,
                gradient_ms,
                hotspot_ms,
                hotspot,
                std_factor,
                std_floor_ms,
            } => Value::Object(vec![
                ("kind".into(), Value::String("projected".into())),
                ("floor_ms".into(), Value::F64(*floor_ms)),
                ("gradient_ms".into(), Value::F64(*gradient_ms)),
                ("hotspot_ms".into(), Value::F64(*hotspot_ms)),
                ("hotspot".into(), Value::String(hotspot.clone())),
                ("std_factor".into(), Value::F64(*std_factor)),
                ("std_floor_ms".into(), Value::F64(*std_floor_ms)),
            ]),
        }
    }
}

/// Radio calibration procedure parameters.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CalibrationDef {
    /// Random-stream label of the calibration phase.
    pub label: String,
    /// Wire-path samples drawn per cell during calibration.
    pub samples: u32,
}

impl Default for CalibrationDef {
    fn default() -> Self {
        Self { label: "calibration".into(), samples: 3000 }
    }
}

/// Where a node sits: explicit coordinates or relative to a grid cell.
#[derive(Debug, Clone, PartialEq)]
pub enum PositionDef {
    /// Fixed WGS-84 coordinates.
    Geo {
        /// Latitude, degrees.
        lat: f64,
        /// Longitude, degrees.
        lon: f64,
    },
    /// Relative to a grid cell: the centroid, optionally displaced along a
    /// bearing (an `offset_km` of `0.0` is exactly the centroid).
    Cell {
        /// Cell label (`"E3"`).
        cell: String,
        /// Displacement bearing, degrees clockwise from north.
        bearing_deg: f64,
        /// Displacement distance, km.
        offset_km: f64,
    },
}

impl Serialize for PositionDef {
    fn to_value(&self) -> Value {
        match self {
            PositionDef::Geo { lat, lon } => Value::Object(vec![
                ("lat".into(), Value::F64(*lat)),
                ("lon".into(), Value::F64(*lon)),
            ]),
            PositionDef::Cell { cell, bearing_deg, offset_km } => Value::Object(vec![
                ("cell".into(), Value::String(cell.clone())),
                ("bearing_deg".into(), Value::F64(*bearing_deg)),
                ("offset_km".into(), Value::F64(*offset_km)),
            ]),
        }
    }
}

/// One named infrastructure node of the transit chain.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HopDef {
    /// Unique node name, referenced by links and roles (`"dp-edge-vie"`).
    pub name: String,
    /// Node role, one of the [`NodeKind`] variant names
    /// (`"CoreRouter"`, `"BorderRouter"`, `"Ixp"`, `"Anchor"`, …).
    pub kind: String,
    /// Owning autonomous system number.
    pub asn: u32,
    /// Geographic position.
    pub position: PositionDef,
    /// Pinned IPv4 address (otherwise derived from the org profile).
    pub ip: Option<[u8; 4]>,
    /// Pinned reverse-DNS name (otherwise generated from the org style).
    pub rdns: Option<String>,
}

/// One link of the transit chain, by hop names.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LinkDef {
    /// One endpoint (a declared hop name).
    pub a: String,
    /// Other endpoint.
    pub b: String,
    /// Capacity, bits per second.
    pub bandwidth_bps: f64,
    /// Background utilisation ρ ∈ [0, 1).
    pub utilisation: f64,
    /// Extra fixed-latency distribution (tunnelling, middleboxes). The
    /// analytic sampler uses its mean; event-driven workloads can sample it.
    pub extra: DistSpec,
}

/// One scheduled link fault of the campaign timeline.
///
/// Times are seconds into each pass's traversal clock (the same clock the
/// dwell schedule and probe launches run on). The event backend applies
/// the schedule mid-campaign: the link tombstones at `at_s`, the BGP
/// speakers of [`sixg_netsim::routing::dynamic`] reconverge by exchanging
/// withdraw/update messages, and probes launched during the transient
/// measure the detour shift (or the blackhole) for real. Fault schedules
/// therefore require `"backend": "event"`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultDef {
    /// The faulted link as its two endpoint hop names (order-insensitive;
    /// must match a declared `$.links` entry).
    pub link: [String; 2],
    /// Failure time, seconds into each pass.
    pub at_s: f64,
    /// Recovery time, seconds into each pass (absent = stays down).
    pub recover_at_s: Option<f64>,
}

/// Per-AS reverse-DNS organisation profile.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OrgDef {
    /// Autonomous system the profile applies to.
    pub asn: u32,
    /// Registered domain (`"ascus.at"`).
    pub domain: String,
    /// Country code used by some styles.
    pub cc: String,
    /// Naming style, one of the [`NameStyle`] variant names.
    pub style: String,
    /// First two octets of the org's address space.
    pub prefix: [u8; 2],
}

/// One AS business relationship.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AsRelationDef {
    /// `"transit"` (a provides transit to b) or `"peering"`.
    pub kind: String,
    /// Provider AS for transit; either side for peering.
    pub a: u32,
    /// Customer AS for transit; other side for peering.
    pub b: u32,
}

/// How mobile UEs attach: one per traversed cell, linked to the gateway.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct UeDef {
    /// Hop name of the operator gateway every UE links to.
    pub gateway: String,
    /// UE node-name prefix (`"ue-"` → `"ue-c2"`).
    pub name_prefix: String,
    /// UE access-link capacity, bits per second.
    pub bandwidth_bps: f64,
    /// UE access-link utilisation.
    pub utilisation: f64,
    /// UE access-link extra delay distribution.
    pub extra: DistSpec,
}

/// Fixed peer nodes of the campaign (the "eight other nodes").
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PeerDef {
    /// Cells the peers sit in (may be empty: anchor-only campaigns).
    pub cells: Vec<String>,
    /// Hop name their access aggregates at.
    pub attach: String,
    /// Peer node-name prefix (`"peer-"` → `"peer-1"`).
    pub name_prefix: String,
    /// Displacement bearing from the cell centroid, degrees.
    pub bearing_deg: f64,
    /// Displacement distance, km (keeps peers off the UE centroids).
    pub offset_km: f64,
    /// Peer access-link capacity, bits per second.
    pub bandwidth_bps: f64,
    /// Peer access-link utilisation.
    pub utilisation: f64,
    /// Peer access-link extra delay distribution.
    pub extra: DistSpec,
}

impl PeerDef {
    /// A campaign without fixed peers (anchor-only measurement).
    pub fn none() -> Self {
        Self {
            cells: Vec::new(),
            attach: String::new(),
            name_prefix: "peer-".into(),
            bearing_deg: 45.0,
            offset_km: 0.25,
            bandwidth_bps: 1e9,
            utilisation: 0.25,
            extra: DistSpec::Constant { ms: 0.8 },
        }
    }
}

/// Measurement roles: which hops anchor the campaign.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MeasurementDef {
    /// Hop name of the measurement anchor (first campaign target).
    pub anchor: String,
    /// Hop name of the cloud reference used by the wired baseline, if any.
    pub cloud: Option<String>,
    /// Cell of the reference mobile node (the Table-I-style endpoint).
    pub reference_cell: String,
    /// City code the traceroute's reverse-DNS rendering uses as vantage
    /// (`"vie"` for the Klagenfurt Table I).
    pub rdns_city: String,
}

/// Default campaign parameters (the spec's seed policy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CampaignDef {
    /// Default campaign seed (combined with the scenario seed).
    pub seed: u64,
    /// Default number of grid traversals.
    pub passes: u32,
    /// Seconds between measurements while dwelling in a cell.
    pub sample_interval_s: f64,
}

impl Default for CampaignDef {
    fn default() -> Self {
        Self { seed: 1, passes: 1, sample_interval_s: 2.0 }
    }
}

/// One workload class share of the scenario's traffic mix.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadShareDef {
    /// Application class name (`"ArGaming"`, `"IotTelemetry"`, …).
    pub class: String,
    /// Fraction of traffic, in (0, 1]; shares must sum to 1.
    pub share: f64,
}

/// The scenario's workload mix and the class its gap analysis is judged
/// against.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadMixDef {
    /// Class whose requirement the campaign output is compared to.
    pub reference_class: String,
    /// Traffic shares, summing to 1.
    pub mix: Vec<WorkloadShareDef>,
}

impl Default for WorkloadMixDef {
    fn default() -> Self {
        Self {
            reference_class: "ArGaming".into(),
            mix: vec![WorkloadShareDef { class: "ArGaming".into(), share: 1.0 }],
        }
    }
}

/// How a campaign is executed.
///
/// Both backends consume the same `(seed, pass, cell, sample)` stream-keyed
/// shard work list, so each is deterministic and parallel; they differ in
/// *what* produces a sample. The analytic backend draws closed-form path
/// delays; the event backend pushes a probe packet through a per-hop
/// discrete-event world (FIFO link serialisation, sampled per-link extra
/// distributions) and can therefore express congestion the closed form
/// cannot. Cross-validated against each other by `repro_crossval`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecBackend {
    /// Closed-form path sampling (the default; all goldens pin it).
    Analytic,
    /// Packet-level discrete-event simulation per shard.
    Event,
}

impl ExecBackend {
    /// The spec-level tag (`"analytic"` / `"event"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ExecBackend::Analytic => "analytic",
            ExecBackend::Event => "event",
        }
    }
}

impl fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Parses an execution backend tag.
pub fn parse_backend(s: &str) -> Result<ExecBackend, String> {
    match s {
        "analytic" => Ok(ExecBackend::Analytic),
        "event" => Ok(ExecBackend::Event),
        other => Err(format!("unknown backend {other:?} (expected analytic or event)")),
    }
}

/// The complete declarative scenario description.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioSpec {
    /// Scenario name (`"klagenfurt"`).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Scenario seed: drives calibration, density jitter, and campaigns.
    pub seed: u64,
    /// Campaign execution backend tag: `"analytic"` (default) or `"event"`
    /// (see [`ExecBackend`]).
    pub backend: String,
    /// Grid geometry.
    pub grid: GridDef,
    /// Density raster parameters.
    pub density: DensityDef,
    /// Radio calibration targets.
    pub targets: TargetDef,
    /// Cells excluded from the traversal (besides explicit `0.0` targets).
    pub skipped_cells: Vec<String>,
    /// Calibration procedure parameters.
    pub calibration: CalibrationDef,
    /// Named infrastructure nodes, in insertion order.
    pub hops: Vec<HopDef>,
    /// Links between hops, in insertion order.
    pub links: Vec<LinkDef>,
    /// Scheduled link fail/recover events (event backend only).
    pub faults: Vec<FaultDef>,
    /// Per-AS naming profiles.
    pub orgs: Vec<OrgDef>,
    /// AS business relationships.
    pub as_relations: Vec<AsRelationDef>,
    /// Mobile UE attachment.
    pub ue: UeDef,
    /// Fixed peer nodes.
    pub peers: PeerDef,
    /// Measurement roles.
    pub measurement: MeasurementDef,
    /// Default campaign parameters.
    pub campaign: CampaignDef,
    /// Workload mix.
    pub workloads: WorkloadMixDef,
}

/// Largest grid dimension served by the *legacy* stream-key scheme
/// (`(col << 8) | row`, see [`crate::scenario::KeyScheme::Legacy`]).
///
/// This is a versioning boundary, not a hard limit: grids at or below this
/// dimension keep the historical packing bit-for-bit (every committed
/// golden number depends on it), while larger grids select
/// [`crate::scenario::KeyScheme::Wide`] (`(col << 32) | row`) and with it
/// the columnar batched-draw sampling path on the analytic backend.
pub const PACKABLE_GRID_DIM: u32 = 256;

/// Upper bound on total cells per grid (4096² — sixteen times the
/// continental 1000×1000 reference scenario). Beyond this the per-cell
/// accumulator field alone exceeds a sensible memory budget; shard the
/// sector into multiple scenarios instead.
pub const MAX_GRID_CELLS: u64 = 4096 * 4096;

/// True when `x` is a finite, strictly positive number (NaN and ∞ fail,
/// which a plain `x > 0.0` comparison would let through or mis-handle).
fn positive(x: f64) -> bool {
    x.is_finite() && x > 0.0
}

/// True for a plausible WGS-84 coordinate (NaN fails).
fn valid_coordinate(lat: f64, lon: f64) -> bool {
    lat.abs() <= 90.0 && lon.abs() <= 180.0
}

/// Parses a [`NodeKind`] variant name.
pub fn parse_node_kind(s: &str) -> Result<NodeKind, String> {
    Ok(match s {
        "UserEquipment" => NodeKind::UserEquipment,
        "GnB" => NodeKind::GnB,
        "Upf" => NodeKind::Upf,
        "EdgeServer" => NodeKind::EdgeServer,
        "CoreRouter" => NodeKind::CoreRouter,
        "BorderRouter" => NodeKind::BorderRouter,
        "Ixp" => NodeKind::Ixp,
        "CloudDc" => NodeKind::CloudDc,
        "Anchor" => NodeKind::Anchor,
        "Server" => NodeKind::Server,
        other => {
            return Err(format!(
                "unknown node kind {other:?} (expected one of UserEquipment, GnB, Upf, \
                 EdgeServer, CoreRouter, BorderRouter, Ixp, CloudDc, Anchor, Server)"
            ))
        }
    })
}

/// Parses a [`NameStyle`] variant name.
pub fn parse_name_style(s: &str) -> Result<NameStyle, String> {
    Ok(match s {
        "IpEmbedded" => NameStyle::IpEmbedded,
        "CoreRouter" => NameStyle::CoreRouter,
        "IxRouter" => NameStyle::IxRouter,
        "PlainHost" => NameStyle::PlainHost,
        "ReverseOctets" => NameStyle::ReverseOctets,
        "Unresolved" => NameStyle::Unresolved,
        other => {
            return Err(format!(
                "unknown name style {other:?} (expected one of IpEmbedded, CoreRouter, \
                 IxRouter, PlainHost, ReverseOctets, Unresolved)"
            ))
        }
    })
}

// ---------------------------------------------------------------------------
// Decoding: Value → spec, with JSON-path error context.
// ---------------------------------------------------------------------------

/// A [`Value`] cursor that remembers its JSON path for error messages
/// (shared with the sweep decoder in [`crate::sweep`]).
pub(crate) struct Ctx<'a> {
    pub(crate) v: &'a Value,
    pub(crate) path: String,
}

impl<'a> Ctx<'a> {
    pub(crate) fn root(v: &'a Value) -> Self {
        Self { v, path: "$".into() }
    }

    pub(crate) fn err(&self, message: impl Into<String>) -> SpecError {
        SpecError::new(self.path.clone(), message)
    }

    pub(crate) fn type_err(&self, want: &str) -> SpecError {
        self.err(format!("expected {want}, found {}", self.v.type_name()))
            .with_code(ErrorCode::Schema)
    }

    /// Required object member.
    pub(crate) fn field(&self, name: &str) -> Result<Ctx<'a>, SpecError> {
        if self.v.as_object().is_none() {
            return Err(self.type_err("object"));
        }
        match self.v.get(name) {
            Some(v) => Ok(Ctx { v, path: format!("{}.{name}", self.path) }),
            None => Err(self
                .err(format!("missing required field `{name}`"))
                .with_code(ErrorCode::Schema)),
        }
    }

    /// Optional object member; absent or `null` → `None`.
    pub(crate) fn opt(&self, name: &str) -> Option<Ctx<'a>> {
        match self.v.get(name) {
            Some(v) if !v.is_null() => Some(Ctx { v, path: format!("{}.{name}", self.path) }),
            _ => None,
        }
    }

    pub(crate) fn f64(&self) -> Result<f64, SpecError> {
        self.v.as_f64().ok_or_else(|| self.type_err("number"))
    }

    pub(crate) fn u64(&self) -> Result<u64, SpecError> {
        self.v.as_u64().ok_or_else(|| self.type_err("non-negative integer"))
    }

    pub(crate) fn u32(&self) -> Result<u32, SpecError> {
        let n = self.u64()?;
        u32::try_from(n).map_err(|_| self.err(format!("{n} does not fit in 32 bits")))
    }

    pub(crate) fn u8(&self) -> Result<u8, SpecError> {
        let n = self.u64()?;
        u8::try_from(n).map_err(|_| self.err(format!("{n} does not fit in 8 bits")))
    }

    pub(crate) fn bool(&self) -> Result<bool, SpecError> {
        self.v.as_bool().ok_or_else(|| self.type_err("boolean"))
    }

    pub(crate) fn str(&self) -> Result<&'a str, SpecError> {
        self.v.as_str().ok_or_else(|| self.type_err("string"))
    }

    pub(crate) fn string(&self) -> Result<String, SpecError> {
        self.str().map(str::to_string)
    }

    pub(crate) fn array(&self) -> Result<Vec<Ctx<'a>>, SpecError> {
        let xs = self.v.as_array().ok_or_else(|| self.type_err("array"))?;
        Ok(xs
            .iter()
            .enumerate()
            .map(|(i, v)| Ctx { v, path: format!("{}[{i}]", self.path) })
            .collect())
    }

    pub(crate) fn f64_matrix(&self) -> Result<Vec<Vec<f64>>, SpecError> {
        self.array()?
            .into_iter()
            .map(|row| row.array()?.into_iter().map(|x| x.f64()).collect())
            .collect()
    }

    pub(crate) fn octets<const N: usize>(&self) -> Result<[u8; N], SpecError> {
        let xs = self.array()?;
        if xs.len() != N {
            return Err(self.err(format!("expected {N} octets, found {}", xs.len())));
        }
        let mut out = [0u8; N];
        for (slot, x) in out.iter_mut().zip(xs) {
            *slot = x.u8()?;
        }
        Ok(out)
    }

    pub(crate) fn dist(&self) -> Result<DistSpec, SpecError> {
        DistSpec::from_value(self.v).map_err(|m| self.err(m))
    }
}

fn decode_grid(c: &Ctx) -> Result<GridDef, SpecError> {
    Ok(GridDef {
        origin_lat: c.field("origin_lat")?.f64()?,
        origin_lon: c.field("origin_lon")?.f64()?,
        cols: c.field("cols")?.u32()?,
        rows: c.field("rows")?.u32()?,
        cell_km: c.field("cell_km")?.f64()?,
    })
}

fn decode_density(c: &Ctx) -> Result<DensityDef, SpecError> {
    let d = DensityDef::default();
    Ok(DensityDef {
        core_col: c.field("core_col")?.f64()?,
        core_row: c.field("core_row")?.f64()?,
        peak: c.field("peak")?.f64()?,
        decay_cells: c.field("decay_cells")?.f64()?,
        dense_fill: c.opt("dense_fill").map_or(Ok(d.dense_fill), |x| x.f64())?,
        sparse_fill: c.opt("sparse_fill").map_or(Ok(d.sparse_fill), |x| x.f64())?,
        jitter_mod: c.opt("jitter_mod").map_or(Ok(d.jitter_mod), |x| x.u64())?,
    })
}

fn decode_targets(c: &Ctx) -> Result<TargetDef, SpecError> {
    match c.field("kind")?.str()? {
        "explicit" => Ok(TargetDef::Explicit {
            mean: c.field("mean")?.f64_matrix()?,
            std: c.field("std")?.f64_matrix()?,
        }),
        "projected" => Ok(TargetDef::Projected {
            floor_ms: c.field("floor_ms")?.f64()?,
            gradient_ms: c.field("gradient_ms")?.f64()?,
            hotspot_ms: c.field("hotspot_ms")?.f64()?,
            hotspot: c.field("hotspot")?.string()?,
            std_factor: c.opt("std_factor").map_or(Ok(0.75), |x| x.f64())?,
            std_floor_ms: c.opt("std_floor_ms").map_or(Ok(2.0), |x| x.f64())?,
        }),
        other => Err(c
            .field("kind")?
            .err(format!("unknown target kind {other:?} (expected explicit or projected)"))),
    }
}

fn decode_position(c: &Ctx) -> Result<PositionDef, SpecError> {
    if c.v.get("cell").is_some() {
        Ok(PositionDef::Cell {
            cell: c.field("cell")?.string()?,
            bearing_deg: c.opt("bearing_deg").map_or(Ok(0.0), |x| x.f64())?,
            offset_km: c.opt("offset_km").map_or(Ok(0.0), |x| x.f64())?,
        })
    } else if c.v.get("lat").is_some() || c.v.get("lon").is_some() {
        Ok(PositionDef::Geo { lat: c.field("lat")?.f64()?, lon: c.field("lon")?.f64()? })
    } else {
        Err(c.err("position needs either {lat, lon} or {cell, bearing_deg?, offset_km?}"))
    }
}

fn decode_hop(c: &Ctx) -> Result<HopDef, SpecError> {
    Ok(HopDef {
        name: c.field("name")?.string()?,
        kind: c.field("kind")?.string()?,
        asn: c.field("asn")?.u32()?,
        position: decode_position(&c.field("position")?)?,
        ip: c.opt("ip").map(|x| x.octets()).transpose()?,
        rdns: c.opt("rdns").map(|x| x.string()).transpose()?,
    })
}

fn decode_link(c: &Ctx) -> Result<LinkDef, SpecError> {
    Ok(LinkDef {
        a: c.field("a")?.string()?,
        b: c.field("b")?.string()?,
        bandwidth_bps: c.field("bandwidth_bps")?.f64()?,
        utilisation: c.field("utilisation")?.f64()?,
        extra: c.opt("extra").map_or(Ok(DistSpec::Constant { ms: 0.0 }), |x| x.dist())?,
    })
}

fn decode_fault(c: &Ctx) -> Result<FaultDef, SpecError> {
    let link = c.field("link")?;
    let ends = link.array()?;
    if ends.len() != 2 {
        return Err(link.err(format!("expected two endpoint hop names, found {}", ends.len())));
    }
    Ok(FaultDef {
        link: [ends[0].string()?, ends[1].string()?],
        at_s: c.field("at_s")?.f64()?,
        recover_at_s: c.opt("recover_at_s").map(|x| x.f64()).transpose()?,
    })
}

fn decode_org(c: &Ctx) -> Result<OrgDef, SpecError> {
    Ok(OrgDef {
        asn: c.field("asn")?.u32()?,
        domain: c.field("domain")?.string()?,
        cc: c.field("cc")?.string()?,
        style: c.field("style")?.string()?,
        prefix: c.field("prefix")?.octets()?,
    })
}

fn decode_relation(c: &Ctx) -> Result<AsRelationDef, SpecError> {
    Ok(AsRelationDef {
        kind: c.field("kind")?.string()?,
        a: c.field("a")?.u32()?,
        b: c.field("b")?.u32()?,
    })
}

fn decode_ue(c: &Ctx) -> Result<UeDef, SpecError> {
    Ok(UeDef {
        gateway: c.field("gateway")?.string()?,
        name_prefix: c.opt("name_prefix").map_or(Ok("ue-".into()), |x| x.string())?,
        bandwidth_bps: c.opt("bandwidth_bps").map_or(Ok(1e9), |x| x.f64())?,
        utilisation: c.opt("utilisation").map_or(Ok(0.10), |x| x.f64())?,
        extra: c.opt("extra").map_or(Ok(DistSpec::Constant { ms: 0.0 }), |x| x.dist())?,
    })
}

fn decode_peers(c: &Ctx) -> Result<PeerDef, SpecError> {
    let d = PeerDef::none();
    Ok(PeerDef {
        cells: c
            .field("cells")?
            .array()?
            .into_iter()
            .map(|x| x.string())
            .collect::<Result<_, _>>()?,
        attach: c.opt("attach").map_or(Ok(String::new()), |x| x.string())?,
        name_prefix: c.opt("name_prefix").map_or(Ok(d.name_prefix), |x| x.string())?,
        bearing_deg: c.opt("bearing_deg").map_or(Ok(d.bearing_deg), |x| x.f64())?,
        offset_km: c.opt("offset_km").map_or(Ok(d.offset_km), |x| x.f64())?,
        bandwidth_bps: c.opt("bandwidth_bps").map_or(Ok(d.bandwidth_bps), |x| x.f64())?,
        utilisation: c.opt("utilisation").map_or(Ok(d.utilisation), |x| x.f64())?,
        extra: c.opt("extra").map_or(Ok(d.extra), |x| x.dist())?,
    })
}

fn decode_measurement(c: &Ctx) -> Result<MeasurementDef, SpecError> {
    Ok(MeasurementDef {
        anchor: c.field("anchor")?.string()?,
        cloud: c.opt("cloud").map(|x| x.string()).transpose()?,
        reference_cell: c.field("reference_cell")?.string()?,
        rdns_city: c.opt("rdns_city").map_or(Ok("vie".into()), |x| x.string())?,
    })
}

fn decode_campaign(c: &Ctx) -> Result<CampaignDef, SpecError> {
    Ok(CampaignDef {
        seed: c.field("seed")?.u64()?,
        passes: c.field("passes")?.u32()?,
        sample_interval_s: c.opt("sample_interval_s").map_or(Ok(2.0), |x| x.f64())?,
    })
}

fn decode_workloads(c: &Ctx) -> Result<WorkloadMixDef, SpecError> {
    Ok(WorkloadMixDef {
        reference_class: c.field("reference_class")?.string()?,
        mix: c
            .field("mix")?
            .array()?
            .into_iter()
            .map(|x| {
                Ok(WorkloadShareDef {
                    class: x.field("class")?.string()?,
                    share: x.field("share")?.f64()?,
                })
            })
            .collect::<Result<_, SpecError>>()?,
    })
}

impl ScenarioSpec {
    /// Decodes a spec from a parsed JSON value tree.
    pub fn from_value(v: &Value) -> Result<Self, SpecError> {
        let c = Ctx::root(v);
        if c.v.as_object().is_none() {
            return Err(c.type_err("object"));
        }
        Ok(Self {
            name: c.field("name")?.string()?,
            description: c.opt("description").map_or(Ok(String::new()), |x| x.string())?,
            seed: c.field("seed")?.u64()?,
            backend: c.opt("backend").map_or(Ok("analytic".into()), |x| x.string())?,
            grid: decode_grid(&c.field("grid")?)?,
            density: decode_density(&c.field("density")?)?,
            targets: decode_targets(&c.field("targets")?)?,
            skipped_cells: c
                .opt("skipped_cells")
                .map_or(Ok(Vec::new()), |x| x.array()?.into_iter().map(|e| e.string()).collect())?,
            calibration: match c.opt("calibration") {
                Some(x) => CalibrationDef {
                    label: x.field("label")?.string()?,
                    samples: x.field("samples")?.u32()?,
                },
                None => CalibrationDef::default(),
            },
            hops: c.field("hops")?.array()?.iter().map(decode_hop).collect::<Result<_, _>>()?,
            links: c.field("links")?.array()?.iter().map(decode_link).collect::<Result<_, _>>()?,
            faults: c
                .opt("faults")
                .map_or(Ok(Vec::new()), |x| x.array()?.iter().map(decode_fault).collect())?,
            orgs: c
                .opt("orgs")
                .map_or(Ok(Vec::new()), |x| x.array()?.iter().map(decode_org).collect())?,
            as_relations: c
                .field("as_relations")?
                .array()?
                .iter()
                .map(decode_relation)
                .collect::<Result<_, _>>()?,
            ue: decode_ue(&c.field("ue")?)?,
            peers: match c.opt("peers") {
                Some(x) => decode_peers(&x)?,
                None => PeerDef::none(),
            },
            measurement: decode_measurement(&c.field("measurement")?)?,
            campaign: match c.opt("campaign") {
                Some(x) => decode_campaign(&x)?,
                None => CampaignDef::default(),
            },
            workloads: match c.opt("workloads") {
                Some(x) => decode_workloads(&x)?,
                None => WorkloadMixDef::default(),
            },
        })
    }

    /// Parses a spec from JSON text.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let v = serde_json::from_str(text).map_err(|e| {
            SpecError::coded(ErrorCode::InvalidJson, "$", format!("invalid JSON: {e}"))
        })?;
        Self::from_value(&v)
    }

    /// Serialises the spec to pretty JSON (the committed `specs/*.json`
    /// format). Round-trips exactly: `from_json(to_json(spec)) == spec`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialises")
    }

    /// Index into [`Self::links`] of the link a fault references
    /// (order-insensitive endpoints), if declared. Spec links compile to
    /// `LinkId(index)` in declaration order, so this index doubles as the
    /// runtime link id of the faulted link.
    pub fn fault_link_index(&self, fault: &FaultDef) -> Option<usize> {
        let [a, b] = &fault.link;
        self.links.iter().position(|l| (l.a == *a && l.b == *b) || (l.a == *b && l.b == *a))
    }

    /// Checks every cross-field invariant; returns all violations (empty =
    /// valid). [`crate::scenario::Scenario::from_spec`] refuses invalid
    /// specs with the first of these errors.
    pub fn validate(&self) -> Vec<SpecError> {
        let mut errors = Vec::new();
        let mut err = |path: &str, message: String| errors.push(SpecError::new(path, message));

        if self.name.is_empty() {
            err("$.name", "scenario name must not be empty".into());
        }
        if let Err(m) = parse_backend(&self.backend) {
            err("$.backend", m);
        }
        // Stream-key scheme routing: grids at or below PACKABLE_GRID_DIM
        // per side keep the legacy `(col << 8) | row` packing bit-for-bit
        // (every golden stream depends on it); larger grids select the
        // wide `(col << 32) | row` scheme and the columnar batched-draw
        // path, which only the analytic backend implements — mega-grids
        // compile without the per-cell topology the event backend probes.
        let wide_scheme = self.grid.cols > PACKABLE_GRID_DIM || self.grid.rows > PACKABLE_GRID_DIM;
        if wide_scheme {
            if matches!(parse_backend(&self.backend), Ok(ExecBackend::Event)) {
                err(
                    "$.backend",
                    format!(
                        "grid {}×{} exceeds {PACKABLE_GRID_DIM}×{PACKABLE_GRID_DIM} and uses the \
                         wide stream-key scheme, whose columnar sampling path only the analytic \
                         backend implements — set \"backend\": \"analytic\"",
                        self.grid.cols, self.grid.rows
                    ),
                );
            }
            if !self.faults.is_empty() {
                err(
                    "$.faults",
                    format!(
                        "fault schedules run on the event backend, which the wide stream-key \
                         scheme (grid {}×{} beyond {PACKABLE_GRID_DIM}×{PACKABLE_GRID_DIM}) does \
                         not support",
                        self.grid.cols, self.grid.rows
                    ),
                );
            }
        }
        if self.grid.cols as u64 * self.grid.rows as u64 > MAX_GRID_CELLS {
            err(
                "$.grid",
                format!(
                    "grid {}×{} exceeds {MAX_GRID_CELLS} total cells; shard the sector into \
                     multiple scenarios",
                    self.grid.cols, self.grid.rows
                ),
            );
        }
        if self.grid.cols == 0 || self.grid.rows == 0 {
            err(
                "$.grid",
                format!("grid must be non-empty, got {}×{}", self.grid.cols, self.grid.rows),
            );
        }
        if !positive(self.grid.cell_km) {
            err("$.grid.cell_km", format!("cell size must be positive, got {}", self.grid.cell_km));
        }
        if !valid_coordinate(self.grid.origin_lat, self.grid.origin_lon) {
            err(
                "$.grid",
                format!(
                    "origin ({}, {}) is not a valid WGS-84 coordinate",
                    self.grid.origin_lat, self.grid.origin_lon
                ),
            );
        }

        let in_grid = |cell: CellId| cell.col < self.grid.cols && cell.row < self.grid.rows;
        let parse_cell = |label: &str| -> Result<CellId, String> {
            let cell = CellId::parse(label)
                .ok_or_else(|| format!("invalid cell label {label:?} (expected e.g. \"C2\")"))?;
            if !in_grid(cell) {
                return Err(format!(
                    "cell {label} lies outside the {}×{} grid",
                    self.grid.cols, self.grid.rows
                ));
            }
            Ok(cell)
        };

        // Density.
        if !positive(self.density.peak) || !positive(self.density.decay_cells) {
            err("$.density", "peak and decay_cells must be positive".into());
        }
        if self.density.jitter_mod == 0 {
            err("$.density.jitter_mod", "jitter modulus must be at least 1".into());
        }
        if self.density.dense_fill < SPARSE_THRESHOLD {
            err(
                "$.density.dense_fill",
                format!(
                    "dense fill {} must clear the {SPARSE_THRESHOLD} /km² sparse threshold, \
                 or traversed cells would register as sparse",
                    self.density.dense_fill
                ),
            );
        }
        if self.density.sparse_fill + self.density.jitter_mod as f64 >= SPARSE_THRESHOLD {
            err(
                "$.density.sparse_fill",
                format!(
                    "sparse fill {} plus jitter {} must stay below the {SPARSE_THRESHOLD} /km² \
                 threshold, or skipped cells would register as dense",
                    self.density.sparse_fill, self.density.jitter_mod
                ),
            );
        }

        // Skipped cells: parseable, inside the grid, no overlaps.
        let mut skipped = Vec::new();
        for (i, label) in self.skipped_cells.iter().enumerate() {
            let path = format!("$.skipped_cells[{i}]");
            match parse_cell(label) {
                Ok(cell) if skipped.contains(&cell) => {
                    err(&path, format!("cell {label} is listed twice — overlapping skip entries"))
                }
                Ok(cell) => skipped.push(cell),
                Err(m) => err(&path, m),
            }
        }

        // Targets.
        match &self.targets {
            TargetDef::Explicit { mean, std } => {
                let rows = self.grid.rows as usize;
                let cols = self.grid.cols as usize;
                for (name, m) in [("mean", mean), ("std", std)] {
                    let path = format!("$.targets.{name}");
                    if m.len() != rows {
                        err(
                            &path,
                            format!("expected {rows} rows to match the grid, found {}", m.len()),
                        );
                        continue;
                    }
                    for (r, row) in m.iter().enumerate() {
                        if row.len() != cols {
                            err(
                                &format!("{path}[{r}]"),
                                format!(
                                    "expected {cols} columns to match the grid, found {}",
                                    row.len()
                                ),
                            );
                        }
                        for (cidx, &x) in row.iter().enumerate() {
                            if x < 0.0 {
                                err(
                                    &format!("{path}[{r}][{cidx}]"),
                                    format!("target {name} must be non-negative, got {x}"),
                                );
                            }
                        }
                    }
                }
            }
            TargetDef::Projected {
                floor_ms,
                gradient_ms,
                hotspot_ms,
                hotspot,
                std_factor,
                std_floor_ms,
            } => {
                if !positive(*floor_ms) {
                    err(
                        "$.targets.floor_ms",
                        format!("latency floor must be positive, got {floor_ms}"),
                    );
                }
                if *gradient_ms < 0.0 || *hotspot_ms < 0.0 {
                    err("$.targets", "gradient_ms and hotspot_ms must be non-negative".into());
                }
                if *std_factor < 0.0 || !positive(*std_floor_ms) {
                    err(
                        "$.targets",
                        "std_factor must be non-negative and std_floor_ms positive".into(),
                    );
                }
                match parse_cell(hotspot) {
                    Ok(cell) if skipped.contains(&cell) => err(
                        "$.targets.hotspot",
                        format!("hotspot {hotspot} overlaps a skipped cell"),
                    ),
                    Ok(_) => {}
                    Err(m) => err("$.targets.hotspot", m),
                }
            }
        }

        // Calibration.
        if self.calibration.samples == 0 {
            err("$.calibration.samples", "calibration needs at least one sample per cell".into());
        }
        if self.calibration.label.is_empty() {
            err("$.calibration.label", "calibration stream label must not be empty".into());
        }

        // Hops: unique names, valid kinds/positions.
        let mut hop_names: Vec<&str> = Vec::new();
        if self.hops.is_empty() {
            err("$.hops", "a scenario needs at least one hop (the UE gateway)".into());
        }
        for (i, hop) in self.hops.iter().enumerate() {
            let path = format!("$.hops[{i}]");
            if hop.name.is_empty() {
                err(&format!("{path}.name"), "hop name must not be empty".into());
            }
            if hop_names.contains(&hop.name.as_str()) {
                err(&format!("{path}.name"), format!("duplicate hop name {:?}", hop.name));
            }
            hop_names.push(&hop.name);
            if let Err(m) = parse_node_kind(&hop.kind) {
                err(&format!("{path}.kind"), m);
            }
            match &hop.position {
                PositionDef::Geo { lat, lon } => {
                    if !valid_coordinate(*lat, *lon) {
                        err(
                            &format!("{path}.position"),
                            format!("({lat}, {lon}) is not a valid WGS-84 coordinate"),
                        );
                    }
                }
                PositionDef::Cell { cell, offset_km, .. } => {
                    if let Err(m) = parse_cell(cell) {
                        err(&format!("{path}.position.cell"), m);
                    }
                    if *offset_km < 0.0 {
                        err(
                            &format!("{path}.position.offset_km"),
                            "offset must be non-negative".into(),
                        );
                    }
                }
            }
        }
        let known_hop = |name: &str| hop_names.contains(&name);

        // Links: known endpoints, sane parameters, valid delay dists.
        for (i, link) in self.links.iter().enumerate() {
            let path = format!("$.links[{i}]");
            for (side, name) in [("a", &link.a), ("b", &link.b)] {
                if !known_hop(name) {
                    err(
                        &format!("{path}.{side}"),
                        format!("unknown hop {name:?}; declare it under $.hops first"),
                    );
                }
            }
            if link.a == link.b {
                err(&path, format!("self-loop on hop {:?}", link.a));
            }
            if !positive(link.bandwidth_bps) {
                err(
                    &format!("{path}.bandwidth_bps"),
                    format!("bandwidth must be positive, got {}", link.bandwidth_bps),
                );
            }
            if !(0.0..1.0).contains(&link.utilisation) {
                err(
                    &format!("{path}.utilisation"),
                    format!("utilisation must be in [0, 1), got {}", link.utilisation),
                );
            }
            if let Err(m) = link.extra.validate() {
                err(&format!("{path}.extra"), m);
            }
        }

        // Fault schedule: declared links, sane timing, event backend only.
        if !self.faults.is_empty() && parse_backend(&self.backend) == Ok(ExecBackend::Analytic) {
            err(
                "$.faults",
                "fault schedules replay on the event calendar; set $.backend to \"event\"".into(),
            );
        }
        for (i, fault) in self.faults.iter().enumerate() {
            let path = format!("$.faults[{i}]");
            let [a, b] = &fault.link;
            if a == b {
                err(&format!("{path}.link"), format!("self-loop on hop {a:?}"));
            } else if self.fault_link_index(fault).is_none() {
                err(
                    &format!("{path}.link"),
                    format!("no declared link joins {a:?} and {b:?}; reference a $.links entry"),
                );
            }
            if !fault.at_s.is_finite() || fault.at_s < 0.0 {
                err(
                    &format!("{path}.at_s"),
                    format!("failure time must be finite and non-negative, got {}", fault.at_s),
                );
            }
            if let Some(r) = fault.recover_at_s {
                if !r.is_finite() || r <= fault.at_s {
                    err(
                        &format!("{path}.recover_at_s"),
                        format!("recovery at {r} must come after the failure at {}", fault.at_s),
                    );
                }
            }
        }

        // Orgs and AS relations.
        for (i, org) in self.orgs.iter().enumerate() {
            if let Err(m) = parse_name_style(&org.style) {
                err(&format!("$.orgs[{i}].style"), m);
            }
            if org.domain.is_empty() {
                err(&format!("$.orgs[{i}].domain"), "org domain must not be empty".into());
            }
        }
        for (i, rel) in self.as_relations.iter().enumerate() {
            let path = format!("$.as_relations[{i}]");
            if rel.kind != "transit" && rel.kind != "peering" {
                err(
                    &format!("{path}.kind"),
                    format!("unknown relation kind {:?} (expected transit or peering)", rel.kind),
                );
            }
            if rel.a == rel.b {
                err(&path, format!("AS{} cannot have a relationship with itself", rel.a));
            }
        }

        // UE attachment.
        if !known_hop(&self.ue.gateway) {
            err(
                "$.ue.gateway",
                format!("unknown hop {:?}; declare it under $.hops first", self.ue.gateway),
            );
        }
        if !positive(self.ue.bandwidth_bps) || !(0.0..1.0).contains(&self.ue.utilisation) {
            err("$.ue", "UE link needs positive bandwidth and utilisation in [0, 1)".into());
        }
        if let Err(m) = self.ue.extra.validate() {
            err("$.ue.extra", m);
        }

        // Peers.
        if !self.peers.cells.is_empty() && !known_hop(&self.peers.attach) {
            err(
                "$.peers.attach",
                format!("unknown hop {:?}; declare it under $.hops first", self.peers.attach),
            );
        }
        for (i, label) in self.peers.cells.iter().enumerate() {
            if let Err(m) = parse_cell(label) {
                err(&format!("$.peers.cells[{i}]"), m);
            }
        }
        if !positive(self.peers.bandwidth_bps) || !(0.0..1.0).contains(&self.peers.utilisation) {
            err("$.peers", "peer link needs positive bandwidth and utilisation in [0, 1)".into());
        }
        if let Err(m) = self.peers.extra.validate() {
            err("$.peers.extra", m);
        }

        // Measurement roles.
        if !known_hop(&self.measurement.anchor) {
            err(
                "$.measurement.anchor",
                format!("unknown hop {:?}; declare it under $.hops first", self.measurement.anchor),
            );
        }
        if let Some(cloud) = &self.measurement.cloud {
            if !known_hop(cloud) {
                err(
                    "$.measurement.cloud",
                    format!("unknown hop {cloud:?}; declare it under $.hops first"),
                );
            }
        }
        match parse_cell(&self.measurement.reference_cell) {
            Ok(cell) if skipped.contains(&cell) => err(
                "$.measurement.reference_cell",
                format!(
                    "reference cell {} is skipped, so it hosts no mobile UE",
                    self.measurement.reference_cell
                ),
            ),
            Ok(_) => {}
            Err(m) => err("$.measurement.reference_cell", m),
        }

        // Campaign defaults.
        if self.campaign.passes == 0 {
            err("$.campaign.passes", "a campaign needs at least one pass".into());
        }
        if !positive(self.campaign.sample_interval_s) {
            err(
                "$.campaign.sample_interval_s",
                format!(
                    "sampling cadence must be positive, got {}",
                    self.campaign.sample_interval_s
                ),
            );
        }

        // Workload mix.
        if self.workloads.mix.is_empty() {
            err("$.workloads.mix", "workload mix must not be empty".into());
        }
        let mut total = 0.0;
        for (i, w) in self.workloads.mix.iter().enumerate() {
            if w.class.is_empty() {
                err(&format!("$.workloads.mix[{i}].class"), "class name must not be empty".into());
            }
            if !positive(w.share) {
                err(
                    &format!("$.workloads.mix[{i}].share"),
                    format!("share must be positive, got {}", w.share),
                );
            }
            total += w.share;
        }
        if !self.workloads.mix.is_empty() && (total - 1.0).abs() > 1e-6 {
            err("$.workloads.mix", format!("shares must sum to 1, got {total}"));
        }
        if self.workloads.reference_class.is_empty() {
            err("$.workloads.reference_class", "reference class must not be empty".into());
        }

        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> ScenarioSpec {
        ScenarioSpec {
            name: "mini".into(),
            description: "a minimal two-hop scenario".into(),
            seed: 7,
            backend: "analytic".into(),
            grid: GridDef { origin_lat: 46.65, origin_lon: 14.25, cols: 3, rows: 3, cell_km: 1.0 },
            density: DensityDef {
                core_col: 1.0,
                core_row: 1.0,
                peak: 4000.0,
                decay_cells: 2.0,
                ..DensityDef::default()
            },
            targets: TargetDef::Projected {
                floor_ms: 50.0,
                gradient_ms: 10.0,
                hotspot_ms: 15.0,
                hotspot: "B2".into(),
                std_factor: 0.75,
                std_floor_ms: 2.0,
            },
            skipped_cells: vec!["A1".into()],
            calibration: CalibrationDef { label: "mini-cal".into(), samples: 400 },
            hops: vec![
                HopDef {
                    name: "gw".into(),
                    kind: "CoreRouter".into(),
                    asn: 100,
                    position: PositionDef::Geo { lat: 46.64, lon: 14.30 },
                    ip: Some([10, 0, 0, 1]),
                    rdns: None,
                },
                HopDef {
                    name: "anchor".into(),
                    kind: "Anchor".into(),
                    asn: 200,
                    position: PositionDef::Cell {
                        cell: "C3".into(),
                        bearing_deg: 0.0,
                        offset_km: 0.0,
                    },
                    ip: None,
                    rdns: Some("anchor.example.net".into()),
                },
            ],
            links: vec![LinkDef {
                a: "gw".into(),
                b: "anchor".into(),
                bandwidth_bps: 10e9,
                utilisation: 0.3,
                extra: DistSpec::Constant { ms: 0.2 },
            }],
            faults: Vec::new(),
            orgs: vec![OrgDef {
                asn: 200,
                domain: "example.net".into(),
                cc: "at".into(),
                style: "PlainHost".into(),
                prefix: [193, 5],
            }],
            as_relations: vec![AsRelationDef { kind: "transit".into(), a: 200, b: 100 }],
            ue: UeDef {
                gateway: "gw".into(),
                name_prefix: "ue-".into(),
                bandwidth_bps: 1e9,
                utilisation: 0.1,
                extra: DistSpec::Constant { ms: 0.0 },
            },
            peers: PeerDef::none(),
            measurement: MeasurementDef {
                anchor: "anchor".into(),
                cloud: None,
                reference_cell: "B2".into(),
                rdns_city: "vie".into(),
            },
            campaign: CampaignDef { seed: 1, passes: 2, sample_interval_s: 2.0 },
            workloads: WorkloadMixDef::default(),
        }
    }

    #[test]
    fn minimal_spec_is_valid() {
        let errors = minimal().validate();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn json_round_trip_preserves_spec() {
        let spec = minimal();
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).expect("round trip parses");
        assert_eq!(back, spec);
        // And a second serialisation is textually identical (stable format).
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn unknown_hop_in_link_is_actionable() {
        let mut spec = minimal();
        spec.links[0].b = "missing-core".into();
        let errors = spec.validate();
        let e = errors.iter().find(|e| e.path == "$.links[0].b").expect("link error reported");
        assert!(e.message.contains("missing-core"), "{e}");
        assert!(e.message.contains("declare it under $.hops"), "{e}");
    }

    #[test]
    fn negative_delay_is_rejected() {
        let mut spec = minimal();
        spec.links[0].extra = DistSpec::Constant { ms: -0.5 };
        let errors = spec.validate();
        let e = errors.iter().find(|e| e.path == "$.links[0].extra").expect("extra error");
        assert!(e.message.contains("non-negative"), "{e}");
    }

    #[test]
    fn overlapping_skip_entries_are_rejected() {
        let mut spec = minimal();
        spec.skipped_cells.push("A1".into());
        let errors = spec.validate();
        assert!(errors.iter().any(|e| e.message.contains("overlapping")), "{errors:?}");
    }

    #[test]
    fn hotspot_on_skipped_cell_is_rejected() {
        let mut spec = minimal();
        spec.skipped_cells = vec!["B2".into()];
        let errors = spec.validate();
        assert!(errors.iter().any(|e| e.path == "$.targets.hotspot"), "{errors:?}");
        // The reference cell is also B2, so that must be flagged too.
        assert!(errors.iter().any(|e| e.path == "$.measurement.reference_cell"), "{errors:?}");
    }

    #[test]
    fn explicit_target_dims_must_match_grid() {
        let mut spec = minimal();
        spec.targets = TargetDef::Explicit {
            mean: vec![vec![50.0; 3]; 2], // 2 rows instead of 3
            std: vec![vec![5.0; 3]; 3],
        };
        let errors = spec.validate();
        let e = errors.iter().find(|e| e.path == "$.targets.mean").expect("dim error");
        assert!(e.message.contains("expected 3 rows"), "{e}");
    }

    #[test]
    fn workload_shares_must_sum_to_one() {
        let mut spec = minimal();
        spec.workloads.mix = vec![
            WorkloadShareDef { class: "ArGaming".into(), share: 0.5 },
            WorkloadShareDef { class: "IotTelemetry".into(), share: 0.3 },
        ];
        let errors = spec.validate();
        assert!(errors.iter().any(|e| e.message.contains("sum to 1")), "{errors:?}");
    }

    #[test]
    fn decode_errors_carry_json_paths() {
        let json = r#"{"name": "x", "seed": 1, "grid": {"origin_lat": 46.0, "origin_lon": 14.0, "cols": "three", "rows": 3, "cell_km": 1.0}}"#;
        let err = ScenarioSpec::from_json(json).unwrap_err();
        assert_eq!(err.path, "$.grid.cols");
        assert!(err.message.contains("integer"), "{err}");

        let err = ScenarioSpec::from_json("{\"name\": \"x\"}").unwrap_err();
        assert!(err.message.contains("missing required field"), "{err}");

        let err = ScenarioSpec::from_json("[1, 2").unwrap_err();
        assert!(err.message.contains("invalid JSON"), "{err}");
    }

    /// Writes `specs/*.json` from the code constructors; run with
    /// `cargo test -p sixg-measure --lib regenerate_spec_files -- --ignored`
    /// after an intentional change to a built-in scenario.
    #[test]
    #[ignore = "generator: overwrites the committed specs/*.json files"]
    fn regenerate_spec_files() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs");
        for spec in [
            ScenarioSpec::klagenfurt(),
            ScenarioSpec::klagenfurt_flap(),
            ScenarioSpec::skopje(),
            ScenarioSpec::megacity(),
            ScenarioSpec::continental(),
        ] {
            let path = format!("{dir}/{}.json", spec.name);
            std::fs::write(&path, spec.to_json() + "\n").expect("write spec file");
            println!("wrote {path}");
        }
    }

    #[test]
    fn unknown_backend_is_rejected_with_path() {
        let mut spec = minimal();
        spec.backend = "quantum".into();
        let errors = spec.validate();
        let e = errors.iter().find(|e| e.path == "$.backend").expect("backend error");
        assert!(e.message.contains("quantum"), "{e}");
        assert!(e.message.contains("analytic or event"), "{e}");
        // Both documented values validate.
        for ok in ["analytic", "event"] {
            let mut spec = minimal();
            spec.backend = ok.into();
            assert!(spec.validate().is_empty(), "{ok} must validate");
        }
    }

    #[test]
    fn absent_backend_defaults_to_analytic() {
        let json = minimal().to_json().replace("  \"backend\": \"analytic\",\n", "");
        let spec = ScenarioSpec::from_json(&json).expect("parses without backend");
        assert_eq!(spec.backend, "analytic");
        assert_eq!(parse_backend(&spec.backend), Ok(ExecBackend::Analytic));
    }

    #[test]
    fn non_positive_sample_interval_is_rejected_with_path() {
        for bad in [0.0, -2.0] {
            let mut spec = minimal();
            spec.campaign.sample_interval_s = bad;
            let errors = spec.validate();
            let e = errors
                .iter()
                .find(|e| e.path == "$.campaign.sample_interval_s")
                .unwrap_or_else(|| panic!("interval {bad} must be rejected: {errors:?}"));
            assert!(e.message.contains("positive"), "{e}");
        }
        // Non-finite intervals (unreachable through JSON, reachable through
        // the API) are rejected by the same finite-and-positive predicate.
        let mut spec = minimal();
        spec.campaign.sample_interval_s = f64::NAN;
        assert!(spec.validate().iter().any(|e| e.path == "$.campaign.sample_interval_s"));
    }

    #[test]
    fn nan_coordinates_are_rejected() {
        let mut spec = minimal();
        spec.hops[0].position = PositionDef::Geo { lat: f64::NAN, lon: f64::NAN };
        let errors = spec.validate();
        assert!(errors.iter().any(|e| e.path == "$.hops[0].position"), "{errors:?}");
        let mut spec = minimal();
        spec.grid.origin_lat = f64::NAN;
        assert!(spec.validate().iter().any(|e| e.path == "$.grid"));
    }

    #[test]
    fn bad_utilisation_and_kind_are_reported() {
        let mut spec = minimal();
        spec.links[0].utilisation = 1.0;
        spec.hops[0].kind = "Router".into();
        let errors = spec.validate();
        assert!(errors.iter().any(|e| e.path == "$.links[0].utilisation"), "{errors:?}");
        assert!(
            errors.iter().any(|e| e.path == "$.hops[0].kind" && e.message.contains("Router")),
            "{errors:?}"
        );
    }

    fn flapping(a: &str, b: &str, at_s: f64, recover_at_s: Option<f64>) -> ScenarioSpec {
        let mut spec = minimal();
        spec.backend = "event".into();
        spec.faults = vec![FaultDef { link: [a.into(), b.into()], at_s, recover_at_s }];
        spec
    }

    #[test]
    fn fault_schedule_validates_and_round_trips() {
        let spec = flapping("anchor", "gw", 4.0, Some(9.5));
        let errors = spec.validate();
        assert!(errors.is_empty(), "{errors:?}");
        // Endpoints are order-insensitive and resolve to the declared link.
        assert_eq!(spec.fault_link_index(&spec.faults[0]), Some(0));
        let back = ScenarioSpec::from_json(&spec.to_json()).expect("round-trip");
        assert_eq!(back, spec);
        // A schedule with no recovery round-trips through `null` too.
        let down = flapping("gw", "anchor", 1.0, None);
        assert_eq!(ScenarioSpec::from_json(&down.to_json()).expect("round-trip"), down);
    }

    #[test]
    fn fault_on_undeclared_link_is_rejected_with_path() {
        let errors = flapping("gw", "missing-core", 4.0, None).validate();
        let e = errors.iter().find(|e| e.path == "$.faults[0].link").expect("link error");
        assert!(e.message.contains("missing-core"), "{e}");
        assert!(e.message.contains("$.links"), "{e}");
    }

    #[test]
    fn fault_self_loop_is_rejected() {
        let errors = flapping("gw", "gw", 4.0, None).validate();
        let e = errors.iter().find(|e| e.path == "$.faults[0].link").expect("link error");
        assert!(e.message.contains("self-loop"), "{e}");
    }

    #[test]
    fn fault_failure_time_must_be_finite_and_non_negative() {
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            let errors = flapping("gw", "anchor", bad, None).validate();
            let e = errors.iter().find(|e| e.path == "$.faults[0].at_s").expect("at_s error");
            assert!(e.message.contains("finite and non-negative"), "{e}");
        }
    }

    #[test]
    fn fault_recovery_must_follow_failure() {
        for bad in [3.0, 4.0, f64::NAN] {
            let errors = flapping("gw", "anchor", 4.0, Some(bad)).validate();
            let e = errors
                .iter()
                .find(|e| e.path == "$.faults[0].recover_at_s")
                .expect("recover_at_s error");
            assert!(e.message.contains("after the failure"), "{e}");
        }
    }

    #[test]
    fn faults_require_the_event_backend() {
        let mut spec = flapping("gw", "anchor", 4.0, Some(9.0));
        spec.backend = "analytic".into();
        let errors = spec.validate();
        let e = errors.iter().find(|e| e.path == "$.faults").expect("backend error");
        assert!(e.message.contains("event"), "{e}");
    }
}
