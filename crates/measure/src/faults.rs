//! Fault-bearing campaigns: link fail/recover schedules over a live
//! control plane.
//!
//! The plain event backend ([`crate::event_backend`]) routes every probe
//! over the scenario's *static* Gao–Rexford fixed point. This runner
//! executes the same campaign — same shard list, same
//! `(seed, pass, cell, sample)` stream keys, same per-probe draw order —
//! but applies the spec's validated [`FaultDef`](crate::spec::FaultDef)
//! schedule mid-campaign and
//! lets the routes *emerge* from the message-level BGP speakers of
//! [`sixg_netsim::routing::dynamic`]:
//!
//! * each shard knows its start offset on the per-pass traversal clock
//!   ([`FaultShard::t0_s`]), so a fault at `at_s` seconds into the pass
//!   lands in exactly one shard's window and tombstones the link there
//!   (earlier shards see the link up, later shards start from the
//!   already-converged post-fault fixed point);
//! * when a link dies or recovers, the BGP sessions it carried go down/up
//!   and the speakers exchange withdraw/update messages (at
//!   [`CONTROL_DELAY`](sixg_netsim::routing::dynamic::CONTROL_DELAY) per
//!   hop) *on the same event calendar the probes fly
//!   on* — a probe launched during the transient asks the source AS's RIB
//!   at launch time and measures whatever the half-converged control plane
//!   gives it;
//! * a probe whose RIB entry cannot be stitched over live links (a
//!   blackhole: the withdraw has not reached the source yet, or no backup
//!   route exists) is dropped — no sample, a smaller per-cell count,
//!   exactly like a lost ping.
//!
//! Determinism: every stochastic quantity of probe `i` still comes from
//! its own stream (`key.with(i)`), so the sample a probe produces depends
//! only on the route it resolves at launch — not on any other probe's
//! draws. A fault-free run is therefore bitwise identical to the plain
//! event backend, and post-recovery shards of a faulted run are bitwise
//! identical to an unfaulted run of the same spec (the `repro_faults`
//! gate). Shards rebuild their converged control plane independently, so
//! the parallel runner stays bitwise equal to the sequential one at every
//! pool size.

use crate::aggregate::CellField;
use crate::campaign::{CampaignConfig, MobileCampaign, Shard};
use crate::event_backend::{PHASE_LABEL, PROBE_BYTES};
use crate::parallel::run_items_streaming;
use crate::scenario::Scenario;
use sixg_geo::CellId;
use sixg_netsim::dist::{Component, DistSpec, LogNormal, Sample};
use sixg_netsim::engine::Engine;
use sixg_netsim::latency::{mean_queue_ms, propagation_ms, transmission_ms, PROCESSING_CV};
use sixg_netsim::queueing::FifoServer;
use sixg_netsim::radio::AccessModel;
use sixg_netsim::rng::SimRng;
use sixg_netsim::routing::dynamic::{
    session_down, session_up, sessions_from_topology, ControlPlane, HasControlPlane,
};
use sixg_netsim::routing::PathComputer;
use sixg_netsim::time::{SimDuration, SimTime};
use sixg_netsim::topology::{Asn, LinkId, LinkParams, Topology};
use std::collections::BTreeMap;

/// One campaign shard plus its start offset on the per-pass traversal
/// clock — the extra coordinate the fault timeline is resolved against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultShard {
    /// The (pass, cell, dwell) work item, exactly the plain backends'.
    pub shard: Shard,
    /// Seconds into the pass at which this shard's dwell window starts
    /// (cumulative dwell of the pass's earlier visits).
    pub t0_s: f64,
}

/// A link state change on the per-pass campaign clock, after merging
/// (possibly overlapping) fault intervals per link.
#[derive(Debug, Clone, Copy)]
struct LinkChange {
    at_s: f64,
    link: LinkId,
    up: bool,
}

/// One hop traversal of a probe (the event backend's leg, verbatim).
#[derive(Debug, Clone, Copy)]
struct Leg {
    link: LinkId,
    service: SimDuration,
    after: SimDuration,
}

/// A probe in flight. Unlike the plain backend's, its result slot is an
/// `Option`: a blackholed probe never produces a sample.
struct Probe {
    id: usize,
    launched: SimTime,
    next: usize,
    legs: Vec<Leg>,
    air_ms: f64,
}

/// The per-shard world: the BGP control plane, one FIFO server per link,
/// one optional result slot per probe. `'static`, so control-plane message
/// events and probe legs share one calendar.
struct FaultWorld {
    cp: ControlPlane,
    links: Vec<FifoServer>,
    results: Vec<Option<f64>>,
}

impl HasControlPlane for FaultWorld {
    fn control_plane(&self) -> &ControlPlane {
        &self.cp
    }
    fn control_plane_mut(&mut self) -> &mut ControlPlane {
        &mut self.cp
    }
}

/// Advances a probe one leg; on the last leg, records the RTL sample.
fn advance(eng: &mut Engine<FaultWorld>, world: &mut FaultWorld, mut probe: Probe) {
    match probe.legs.get(probe.next).copied() {
        None => {
            let wire_ms = eng.now().since(probe.launched).as_millis_f64();
            world.results[probe.id] = Some(wire_ms + probe.air_ms);
        }
        Some(leg) => {
            probe.next += 1;
            let depart = world.links[leg.link.0 as usize].admit(eng.now(), leg.service);
            let arrival = depart + leg.after;
            eng.schedule_at(arrival, move |e, w| advance(e, w, probe));
        }
    }
}

/// The fault-aware event campaign runner over a spec-compiled
/// [`Scenario`]. Compiles the spec's fault schedule once (link names →
/// ids, overlapping intervals merged); each shard then replays the slice
/// of the timeline that intersects its dwell window.
pub struct FaultCampaign<'a> {
    campaign: MobileCampaign<'a>,
    extras: Vec<Component>,
    /// Merged link state changes, ordered by (time, link).
    changes: Vec<LinkChange>,
    /// Pristine parameters of every faulted link (restore needs them —
    /// tombstoning poisons the stored bandwidth).
    params: BTreeMap<LinkId, LinkParams>,
}

impl<'a> FaultCampaign<'a> {
    /// Creates a fault-aware campaign over a scenario. The scenario's spec
    /// is already validated, so every fault names a declared link.
    pub fn new(scenario: &'a Scenario, config: CampaignConfig) -> Self {
        let extras = scenario.link_extra_specs().iter().map(DistSpec::build).collect();
        let mut params = BTreeMap::new();
        let mut edges: BTreeMap<LinkId, Vec<(f64, i32)>> = BTreeMap::new();
        for fault in &scenario.spec.faults {
            let idx = scenario
                .spec
                .fault_link_index(fault)
                .expect("validated faults reference declared links");
            let link = LinkId(idx as u32);
            params.insert(link, scenario.topo.links()[idx].params);
            edges.entry(link).or_default().push((fault.at_s, 1));
            if let Some(r) = fault.recover_at_s {
                edges.entry(link).or_default().push((r, -1));
            }
        }
        // Merge overlapping intervals per link: the link is down while any
        // fault holds it down, and only the edges of the union become
        // state changes.
        let mut changes = Vec::new();
        for (link, mut evs) in edges {
            evs.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
            let mut active = 0i32;
            for (at_s, delta) in evs {
                let was_down = active > 0;
                active += delta;
                let is_down = active > 0;
                if was_down != is_down {
                    changes.push(LinkChange { at_s, link, up: !is_down });
                }
            }
        }
        changes.sort_by(|a, b| a.at_s.total_cmp(&b.at_s).then(a.link.cmp(&b.link)));
        Self { campaign: MobileCampaign::new(scenario, config), extras, changes, params }
    }

    /// Whether `link` is down at `t_s` seconds into a pass (state changes
    /// strictly before `t_s`; a change *at* `t_s` belongs to the window
    /// starting there).
    fn link_down_at(&self, link: LinkId, t_s: f64) -> bool {
        let mut down = false;
        for c in &self.changes {
            if c.link == link && c.at_s < t_s {
                down = !c.up;
            }
        }
        down
    }

    /// The outage windows `(down_s, recover_s)` of the merged timeline
    /// (`None` = the link stays down for the rest of every pass).
    pub fn outages(&self) -> Vec<(f64, Option<f64>)> {
        let mut out = Vec::new();
        let mut open: BTreeMap<LinkId, f64> = BTreeMap::new();
        for c in &self.changes {
            if c.up {
                if let Some(start) = open.remove(&c.link) {
                    out.push((start, Some(c.at_s)));
                }
            } else {
                open.insert(c.link, c.at_s);
            }
        }
        out.extend(open.into_values().map(|start| (start, None)));
        out
    }

    /// Cells whose every dwell window, across all passes, is disjoint from
    /// every outage window extended by `margin_s` of reconvergence slack —
    /// the cells a faulted run must reproduce bitwise against an unfaulted
    /// one (the `repro_faults` recovery gate).
    pub fn untouched_cells(&self, margin_s: f64) -> Vec<CellId> {
        let outages = self.outages();
        let mut touched: BTreeMap<CellId, bool> = BTreeMap::new();
        for fs in self.shards() {
            let hit = outages.iter().any(|&(down, recover)| {
                let end = recover.map_or(f64::INFINITY, |r| r + margin_s);
                fs.t0_s < end && down < fs.t0_s + fs.shard.dwell_s
            });
            *touched.entry(fs.shard.cell).or_insert(false) |= hit;
        }
        touched.into_iter().filter_map(|(cell, hit)| (!hit).then_some(cell)).collect()
    }

    /// The campaign work list with per-pass start offsets — the same
    /// shards, in the same order, as the plain backends'.
    pub fn shards(&self) -> Vec<FaultShard> {
        let mut out = Vec::new();
        for pass in 0..self.campaign.config().passes {
            let mut t0_s = 0.0;
            for v in self.campaign.traversal(pass).visits {
                out.push(FaultShard {
                    shard: Shard { pass, cell: v.cell, dwell_s: v.dwell_s },
                    t0_s,
                });
                t0_s += v.dwell_s;
            }
        }
        out
    }

    /// Applies one link state change at the current calendar time:
    /// tombstone/restore the link in the shard-local topology, then take
    /// down / bring up every BGP session whose last physical link it was.
    fn apply_change(
        &self,
        topo: &mut Topology,
        eng: &mut Engine<FaultWorld>,
        world: &mut FaultWorld,
        change: LinkChange,
    ) {
        let graph = &self.campaign.scenario().as_graph;
        let before = sessions_from_topology(topo, graph);
        if change.up {
            topo.restore_link(change.link, self.params[&change.link]);
        } else {
            topo.remove_link(change.link);
        }
        let after = sessions_from_topology(topo, graph);
        for &(a, b) in before.difference(&after) {
            session_down(eng, world, Asn(a), Asn(b));
        }
        for &(a, b) in after.difference(&before) {
            session_up(eng, world, Asn(a), Asn(b));
        }
    }

    /// Event-simulated samples of one shard, in probe order. Blackholed
    /// probes produce no sample, so the buffer can be shorter than the
    /// shard's cadence count.
    pub fn collect_shard_into(&self, fs: FaultShard, out: &mut Vec<f64>) {
        let s = self.campaign.scenario();
        let targets = self.campaign.targets();
        let access = s.access_for(fs.shard.cell);
        let interval_s = self.campaign.config().sample_interval_s;
        let interval = SimDuration::from_secs_f64(interval_s);
        let n = self.campaign.samples_for_dwell(fs.shard.dwell_s);
        let key = self.campaign.shard_key(PHASE_LABEL, fs.shard.pass, fs.shard.cell);
        let ue = s.ue[&fs.shard.cell];
        let src_as = s.topo.node(ue).asn;

        // Shard-local topology with the pre-window fault state installed,
        // and the control plane already at that state's fixed point (a
        // transient from an earlier shard's window has had whole seconds
        // of calendar to settle — reconvergence takes milliseconds).
        let mut topo = s.topo.clone();
        for &link in self.params.keys() {
            if self.link_down_at(link, fs.t0_s) {
                topo.remove_link(link);
            }
        }
        let mut eng: Engine<FaultWorld> = Engine::new();
        let mut world = FaultWorld {
            cp: ControlPlane::converged_from_topology(&topo, &s.as_graph),
            links: vec![FifoServer::new(); s.topo.link_count()],
            results: vec![None; n],
        };

        // The timeline slice that can still affect this shard's probes:
        // changes from the window start up to the last launch, on the
        // shard-local clock (t0 ↦ SimTime::ZERO).
        let last_launch_s = (n - 1) as f64 * interval_s;
        let mut transitions = self
            .changes
            .iter()
            .filter(|c| c.at_s >= fs.t0_s && c.at_s - fs.t0_s <= last_launch_s)
            .map(|c| (SimTime::ZERO + SimDuration::from_secs_f64(c.at_s - fs.t0_s), *c))
            .collect::<Vec<_>>()
            .into_iter()
            .peekable();

        let mut launch = SimTime::ZERO;
        for i in 0..n {
            while let Some(&(at, change)) = transitions.peek() {
                if at > launch {
                    break;
                }
                transitions.next();
                eng.run_until(&mut world, at);
                self.apply_change(&mut topo, &mut eng, &mut world, change);
            }
            eng.run_until(&mut world, launch);

            // Probe `i`: the plain event backend's exact draw order — ti,
            // per-leg extras/queue/processing, then air — but the route is
            // whatever the source AS's RIB holds *now*, stitched over live
            // links. Per-probe streams make the draws independent of every
            // other probe's fate.
            let mut rng = SimRng::for_stream(key.with(i as u64));
            let ti = rng.below(targets.len() as u64) as usize;
            let target = targets[ti];
            let routed = world.cp.best_route(src_as, topo.node(target).asn).and_then(|as_path| {
                PathComputer::new(&topo, &s.as_graph).route_along(ue, target, &as_path)
            });
            if let Some(path) = routed {
                let mut legs = Vec::with_capacity(2 * path.hops.len());
                for _direction in 0..2 {
                    for &(into, link) in &path.hops {
                        let service = transmission_ms(&topo, link, PROBE_BYTES);
                        let extra = self.extras[link.0 as usize].sample(&mut rng).max(0.0);
                        let qmean = mean_queue_ms(&topo, link);
                        let queue =
                            if qmean > 0.0 { -(1.0 - rng.unit()).ln() * qmean } else { 0.0 };
                        let proc_mean = topo.node(into).kind.base_processing_ms();
                        let proc =
                            LogNormal::from_mean_cv(proc_mean, PROCESSING_CV).sample(&mut rng);
                        legs.push(Leg {
                            link,
                            service: SimDuration::from_millis_f64(service),
                            after: SimDuration::from_millis_f64(
                                propagation_ms(&topo, link) + extra + queue + proc,
                            ),
                        });
                    }
                }
                let air_ms = access.sample_rtt_ms(&mut rng);
                let probe = Probe { id: i, launched: launch, next: 0, legs, air_ms };
                advance(&mut eng, &mut world, probe);
            }
            launch += interval;
        }
        eng.run(&mut world);
        debug_assert_eq!(eng.pending(), 0);

        out.clear();
        out.extend(world.results.iter().filter_map(|r| *r));
    }

    /// Runs the full campaign sequentially, shard by shard (bitwise
    /// identical to [`run_faulted_parallel`]).
    pub fn run(&self) -> CellField {
        let mut field = CellField::new(self.campaign.scenario().grid.clone());
        let mut buf = Vec::new();
        for fs in self.shards() {
            self.collect_shard_into(fs, &mut buf);
            for &v in &buf {
                field.push(fs.shard.cell, v);
            }
        }
        field
    }
}

/// Runs the fault-bearing campaign on the thread pool, merging per-shard
/// batches in deterministic work-list order — bitwise equal to
/// [`FaultCampaign::run`] at every pool size. The faulted half of the
/// [`crate::exec`] dispatch.
pub(crate) fn faulted_field(scenario: &Scenario, config: CampaignConfig) -> CellField {
    let fc = FaultCampaign::new(scenario, config);
    let shards = fc.shards();
    let mut field = CellField::new(scenario.grid.clone());
    run_items_streaming(
        &shards,
        |fs, buf| fc.collect_shard_into(fs, buf),
        |fs, buf| {
            for &v in buf {
                field.push(fs.shard.cell, v);
            }
        },
    );
    field
}

#[doc(hidden)]
#[deprecated(
    note = "superseded by the ExecRequest facade: use `exec::run_field(scenario, config, \
            ExecBackend::Event)` on a fault-bearing spec (or `exec::execute`); this shim \
            forwards to the same faulted runner"
)]
pub fn run_faulted_parallel(scenario: &Scenario, config: CampaignConfig) -> CellField {
    faulted_field(scenario, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event_backend::EventCampaign;
    use crate::parallel::with_thread_count;
    use crate::spec::{FaultDef, ScenarioSpec};

    fn config() -> CampaignConfig {
        CampaignConfig { seed: 2, passes: 1, sample_interval_s: 2.0 }
    }

    fn assert_fields_bitwise_equal(s: &Scenario, a: &CellField, b: &CellField, context: &str) {
        for cell in s.grid.cells() {
            let (x, y) = (a.stats(cell), b.stats(cell));
            assert_eq!(x.count, y.count, "{context}: cell {cell} count");
            assert_eq!(x.mean_ms.to_bits(), y.mean_ms.to_bits(), "{context}: cell {cell} mean");
            assert_eq!(x.std_ms.to_bits(), y.std_ms.to_bits(), "{context}: cell {cell} std");
        }
    }

    /// With an empty fault schedule the dynamic control plane converges to
    /// the static fixed point before any probe flies, so the fault runner
    /// is the plain event backend, bit for bit.
    #[test]
    fn fault_free_run_is_bitwise_the_plain_event_backend() {
        let mut spec = ScenarioSpec::klagenfurt();
        spec.backend = "event".into();
        let s = Scenario::from_spec(&spec).expect("compiles");
        let faulted = FaultCampaign::new(&s, config()).run();
        let plain = EventCampaign::new(&s, config()).run();
        assert_fields_bitwise_equal(&s, &faulted, &plain, "fault-free");
    }

    /// During the Klagenfurt transit flap the probes reconverge onto the
    /// backup Vienna crossing and skip the Prague–Bucharest detour, so the
    /// in-outage mean drops by the detour's propagation cost; a shard
    /// whose window starts after recovery is bitwise the unfaulted run.
    #[test]
    fn flap_shifts_routes_in_outage_and_recovers_bitwise() {
        let spec = ScenarioSpec::klagenfurt_flap();
        let s = Scenario::from_spec(&spec).expect("compiles");
        let fc = FaultCampaign::new(&s, config());
        let ec = EventCampaign::new(&s, config());
        let cell = s.reference_cell;
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;

        // Entirely inside the outage (fault at 900 s, recovery at 2500 s).
        let inside = FaultShard { shard: Shard { pass: 0, cell, dwell_s: 120.0 }, t0_s: 1200.0 };
        let mut faulted = Vec::new();
        fc.collect_shard_into(inside, &mut faulted);
        let unfaulted = ec.collect_shard(inside.shard);
        assert_eq!(faulted.len(), unfaulted.len(), "backup path drops no probe");
        assert!(
            mean(&faulted) < mean(&unfaulted) - 5.0,
            "backup crossing must skip the Bucharest detour: faulted {} vs static {}",
            mean(&faulted),
            mean(&unfaulted)
        );

        // Entirely after recovery: bitwise the unfaulted samples.
        let after = FaultShard { shard: Shard { pass: 0, cell, dwell_s: 120.0 }, t0_s: 3000.0 };
        fc.collect_shard_into(after, &mut faulted);
        let clean = ec.collect_shard(after.shard);
        assert_eq!(faulted.len(), clean.len());
        for (i, (f, c)) in faulted.iter().zip(&clean).enumerate() {
            assert_eq!(f.to_bits(), c.to_bits(), "post-recovery probe {i}");
        }
    }

    /// An unrecovered fault on the operator's only egress blackholes every
    /// probe launched at or after the failure: the withdraw reaches the
    /// source immediately (it is session-local), the RIB empties, and the
    /// dropped probes shrink the sample count instead of panicking.
    #[test]
    fn unrecovered_egress_fault_blackholes_later_probes() {
        let mut spec = ScenarioSpec::klagenfurt();
        spec.backend = "event".into();
        spec.faults = vec![FaultDef {
            link: ["op-cgnat-klu".into(), "dp-edge-vie".into()],
            at_s: 100.0,
            recover_at_s: None,
        }];
        let s = Scenario::from_spec(&spec).expect("compiles");
        let fc = FaultCampaign::new(&s, config());
        let fs = FaultShard {
            shard: Shard { pass: 0, cell: s.reference_cell, dwell_s: 300.0 },
            t0_s: 0.0,
        };
        let mut out = Vec::new();
        fc.collect_shard_into(fs, &mut out);
        // 150 launches at 2 s cadence; those at t ≥ 100 s (i ≥ 50) drop.
        assert_eq!(out.len(), 50);
        assert!(out.iter().all(|v| v.is_finite() && *v > 0.0));

        // A shard starting entirely after the unrecovered fault is a full
        // blackhole: zero samples.
        let dark = FaultShard {
            shard: Shard { pass: 0, cell: s.reference_cell, dwell_s: 60.0 },
            t0_s: 500.0,
        };
        fc.collect_shard_into(dark, &mut out);
        assert!(out.is_empty(), "blackholed shard produced {} samples", out.len());
    }

    /// The determinism contract extends to faulted runs: sequential and
    /// parallel are bitwise equal at pool sizes 1, 2 and 4.
    #[test]
    fn faulted_parallel_equals_sequential_bitwise() {
        let spec = ScenarioSpec::klagenfurt_flap();
        let s = Scenario::from_spec(&spec).expect("compiles");
        let seq = FaultCampaign::new(&s, config()).run();
        for &threads in &[1usize, 2, 4] {
            let par = with_thread_count(threads, || {
                crate::exec::run_field(&s, config(), crate::spec::ExecBackend::Event)
            });
            assert_fields_bitwise_equal(&s, &seq, &par, &format!("{threads} threads"));
        }
    }

    /// The untouched-cell classifier: every cell is dirtied by an eternal
    /// fault, none by an empty schedule, and the flap spec leaves both
    /// pre-fault and post-recovery cells clean in every pass.
    #[test]
    fn untouched_cells_classify_the_timeline() {
        let spec = ScenarioSpec::klagenfurt_flap();
        let s = Scenario::from_spec(&spec).expect("compiles");
        let fc = FaultCampaign::new(&s, config());
        assert_eq!(fc.outages(), vec![(900.0, Some(2500.0))]);
        let untouched = fc.untouched_cells(5.0);
        assert!(!untouched.is_empty(), "flap must leave clean cells");
        assert!(untouched.len() < s.included.len(), "flap must dirty some cells");
        // The traversal always starts at B1, well before the 900 s fault.
        assert!(untouched.contains(&CellId::parse("B1").unwrap()));

        let mut eternal = spec.clone();
        eternal.faults = vec![FaultDef {
            link: ["op-cgnat-klu".into(), "dp-edge-vie".into()],
            at_s: 0.0,
            recover_at_s: None,
        }];
        let se = Scenario::from_spec(&eternal).expect("compiles");
        assert!(FaultCampaign::new(&se, config()).untouched_cells(5.0).is_empty());

        let mut none = spec;
        none.faults = Vec::new();
        let sn = Scenario::from_spec(&none).expect("compiles");
        let fc = FaultCampaign::new(&sn, config());
        assert_eq!(fc.untouched_cells(5.0).len(), sn.included.len());
        assert!(fc.outages().is_empty());
    }

    /// Overlapping fault intervals on one link merge into the union: the
    /// link recovers only when the last fault holding it down recovers.
    #[test]
    fn overlapping_faults_merge_into_union_outage() {
        let mut spec = ScenarioSpec::klagenfurt();
        spec.backend = "event".into();
        spec.faults = vec![
            FaultDef {
                link: ["cdn77-core-vie".into(), "zetservers-prg".into()],
                at_s: 100.0,
                recover_at_s: Some(300.0),
            },
            FaultDef {
                link: ["zetservers-prg".into(), "cdn77-core-vie".into()],
                at_s: 200.0,
                recover_at_s: Some(500.0),
            },
        ];
        let s = Scenario::from_spec(&spec).expect("compiles");
        let fc = FaultCampaign::new(&s, config());
        assert_eq!(fc.outages(), vec![(100.0, Some(500.0))]);
        let link = LinkId(2);
        assert!(!fc.link_down_at(link, 99.0));
        assert!(fc.link_down_at(link, 250.0));
        assert!(fc.link_down_at(link, 350.0), "merged interval spans the inner recovery");
        assert!(!fc.link_down_at(link, 501.0));
    }
}
