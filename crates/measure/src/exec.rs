//! The unified execution facade: one typed request, one entry point.
//!
//! Before this module, every caller hand-picked one of five scattered
//! entry points (`run_parallel`, `run_backend`, `run_event_parallel`,
//! `run_faulted_parallel`, `run_checkpointed`) plus the [`Sweep::run`]
//! path — a zoo with no single surface a daemon could expose, and a
//! standing silent-drop hazard: nothing rejected a flag combination no
//! runner honors. This module collapses the zoo into:
//!
//! * [`ExecRequest`] — a typed, JSON-codable request envelope carrying the
//!   action (`validate` / `run` / `sweep`), the spec documents, run-level
//!   overrides, and the checkpoint/shard family. [`ExecRequest::validate`]
//!   *rejects* (never ignores) field combinations no runner honors —
//!   `checkpoint` on a single run, `shard` without `checkpoint`, an
//!   analytic backend override on a fault-bearing spec — each with a
//!   machine-readable [`ErrorCode`].
//! * [`execute`] — `ExecRequest → ExecReport`, with dispatch (analytic /
//!   event / faulted / checkpointed) decided by validated request fields
//!   instead of caller-chosen function names.
//! * [`run_field`] — the compiled-scenario entry point the old free
//!   functions forwarded to; tests, benches and repro bins call this.
//! * [`Executor`] + [`ScenarioCache`] — a long-lived execution context
//!   holding compiled [`Scenario`]s hot, keyed by canonical spec content
//!   hash ([`scenario_content_hash`]); the `sixg-serve` daemon wraps one
//!   `Executor` and multiplexes connections onto it.
//!
//! **Determinism.** Scenario compilation is a pure function of the
//! canonical spec, and every runner folds samples in work-list order, so
//! a cache hit, a cold compile, a different pool size, or a concurrent
//! request on the same `Executor` all produce byte-identical reports —
//! the contract the wire protocol extends to remote clients.
//!
//! **Error anchoring.** Envelope-level complaints (missing/forbidden
//! request fields, override conflicts) anchor at the envelope member
//! (`$.checkpoint`, `$.backend`); document-level complaints anchor inside
//! the spec or sweep document exactly as [`ScenarioSpec::validate`] and
//! sweep validation emit them, so existing path-pinned tooling keeps
//! working whether a document is validated standalone or via a request.

use crate::aggregate::CellField;
use crate::campaign::CampaignConfig;
use crate::hvt::{self, HvtConfig, HvtReport};
use crate::parallel::{dispatch_backend, run_items_streaming};
use crate::report::CellSummary;
use crate::scenario::{KeyScheme, Scenario};
use crate::spec::{
    parse_backend, CampaignDef, Ctx, ErrorCode, ExecBackend, ScenarioSpec, SpecError,
};
use crate::store::{fnv1a64, run_checkpointed, CheckpointConfig, CheckpointError};
use crate::sweep::{Sweep, SweepRun, SweepSpec, VariantReport, DEFAULT_REQUIREMENT_MS};
use serde::{Serialize, Value};
use std::sync::{Arc, Mutex};

/// Runs a compiled scenario's campaign with the chosen backend on the
/// thread pool — the supported replacement for the deprecated
/// `run_parallel` / `run_event_parallel` / `run_faulted_parallel` /
/// `run_backend` free functions. A fault schedule in the spec routes an
/// event run to the live BGP control plane; the analytic backend samples
/// closed-form path delays. Bitwise-deterministic at every pool size.
pub fn run_field(scenario: &Scenario, config: CampaignConfig, backend: ExecBackend) -> CellField {
    dispatch_backend(scenario, config, backend)
}

// ---------------------------------------------------------------------------
// The request envelope.
// ---------------------------------------------------------------------------

/// What an [`ExecRequest`] asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecAction {
    /// Parse + validate the payload documents; run nothing.
    Validate,
    /// Execute one scenario campaign.
    Run,
    /// Execute a sweep's whole campaign matrix.
    Sweep,
}

impl ExecAction {
    /// The stable wire tag (`"validate"` / `"run"` / `"sweep"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ExecAction::Validate => "validate",
            ExecAction::Run => "run",
            ExecAction::Sweep => "sweep",
        }
    }

    /// Parses a wire tag back into an action.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "validate" => ExecAction::Validate,
            "run" => ExecAction::Run,
            "sweep" => ExecAction::Sweep,
            _ => return None,
        })
    }
}

/// Shard selection of a checkpointed sweep: run only shard `index` of
/// `count` disjoint run ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSel {
    /// This shard's index (`< count`).
    pub index: u32,
    /// Total shards (`>= 1`).
    pub count: u32,
}

/// The one typed request every execution mode goes through.
///
/// Construct with [`ExecRequest::run`] / [`ExecRequest::sweep`] /
/// [`ExecRequest::validate_spec`] / [`ExecRequest::validate_sweep`] and
/// set the optional fields directly, or decode one from wire JSON with
/// [`ExecRequest::from_json`]. [`ExecRequest::validate`] checks the whole
/// field matrix before anything runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecRequest {
    /// What to do.
    pub action: ExecAction,
    /// The scenario spec (`run`, or `validate` of a single scenario).
    pub spec: Option<ScenarioSpec>,
    /// The sweep spec (`sweep`, or `validate` of a sweep).
    pub sweep: Option<SweepSpec>,
    /// The sweep's base scenario spec, inline as a raw value tree (the
    /// wire has no filesystem; clients resolve the sweep's `base` file
    /// reference before sending).
    pub base: Option<Value>,
    /// Run-level backend override (`"analytic"` / `"event"`).
    pub backend: Option<String>,
    /// Run-level scenario-seed override (calibration + streams).
    pub seed: Option<u64>,
    /// Run-level campaign-seed override.
    pub campaign_seed: Option<u64>,
    /// Run-level passes override.
    pub passes: Option<u32>,
    /// Run-level sampling-cadence override, seconds.
    pub sample_interval_s: Option<f64>,
    /// Latency requirement the run report's exceedance is judged against,
    /// ms (default [`DEFAULT_REQUIREMENT_MS`]; sweeps carry their own).
    pub requirement_ms: Option<f64>,
    /// Checkpoint store directory: spill completed variants to a resumable
    /// on-disk store (sweeps only; lifts the in-memory variant cap).
    pub checkpoint: Option<String>,
    /// With `checkpoint`: run only this shard of the run range.
    pub shard: Option<ShardSel>,
    /// With `checkpoint`: work items folded between cursor commits.
    pub interval: Option<usize>,
    /// With `checkpoint`: stop once this many items are folded (the
    /// kill/resume testing hook).
    pub stop_after_items: Option<u64>,
    /// With `checkpoint`: stream every store mutation back to the client
    /// as `STORE` frames (the dispatch protocol). When set, `checkpoint`
    /// is a store *name* the worker resolves under its own scratch root —
    /// a safe file-name component, not a path.
    pub stream_store: bool,
    /// With `stream_store`: a `STORE` frame carrying seed state (the dead
    /// previous owner's manifest, cursor and run blobs) follows this
    /// request; the worker plants it in a fresh store and resumes from it.
    pub seed_store: bool,
}

impl ExecRequest {
    fn empty(action: ExecAction) -> Self {
        Self {
            action,
            spec: None,
            sweep: None,
            base: None,
            backend: None,
            seed: None,
            campaign_seed: None,
            passes: None,
            sample_interval_s: None,
            requirement_ms: None,
            checkpoint: None,
            shard: None,
            interval: None,
            stop_after_items: None,
            stream_store: false,
            seed_store: false,
        }
    }

    /// A run request for one scenario spec.
    pub fn run(spec: ScenarioSpec) -> Self {
        Self { spec: Some(spec), ..Self::empty(ExecAction::Run) }
    }

    /// A sweep request: the sweep spec plus its base scenario's value tree.
    pub fn sweep(sweep: SweepSpec, base: Value) -> Self {
        Self { sweep: Some(sweep), base: Some(base), ..Self::empty(ExecAction::Sweep) }
    }

    /// A validate request for one scenario spec.
    pub fn validate_spec(spec: ScenarioSpec) -> Self {
        Self { spec: Some(spec), ..Self::empty(ExecAction::Validate) }
    }

    /// A validate request for a sweep.
    pub fn validate_sweep(sweep: SweepSpec, base: Value) -> Self {
        Self { sweep: Some(sweep), base: Some(base), ..Self::empty(ExecAction::Validate) }
    }

    /// Decodes a request from a parsed JSON value tree. Spec/sweep decode
    /// errors are re-anchored under the envelope member that carried the
    /// document (`$.spec…`, `$.sweep…`).
    pub fn from_value(v: &Value) -> Result<Self, SpecError> {
        let c = Ctx::root(v);
        if c.v.as_object().is_none() {
            return Err(c.type_err("object"));
        }
        let action_c = c.field("action")?;
        let tag = action_c.str()?;
        let action = ExecAction::parse(tag).ok_or_else(|| {
            action_c
                .err(format!("unknown action {tag:?} (expected validate, run or sweep)"))
                .with_code(ErrorCode::Schema)
        })?;
        let spec = match c.opt("spec") {
            Some(x) => Some(ScenarioSpec::from_value(x.v).map_err(|e| reanchor("$.spec", e))?),
            None => None,
        };
        let sweep = match c.opt("sweep") {
            Some(x) => Some(SweepSpec::from_value(x.v).map_err(|e| reanchor("$.sweep", e))?),
            None => None,
        };
        let shard = match c.opt("shard") {
            Some(x) => {
                Some(ShardSel { index: x.field("index")?.u32()?, count: x.field("count")?.u32()? })
            }
            None => None,
        };
        Ok(Self {
            action,
            spec,
            sweep,
            base: c.opt("base").map(|x| x.v.clone()),
            backend: c.opt("backend").map(|x| x.string()).transpose()?,
            seed: c.opt("seed").map(|x| x.u64()).transpose()?,
            campaign_seed: c.opt("campaign_seed").map(|x| x.u64()).transpose()?,
            passes: c.opt("passes").map(|x| x.u32()).transpose()?,
            sample_interval_s: c.opt("sample_interval_s").map(|x| x.f64()).transpose()?,
            requirement_ms: c.opt("requirement_ms").map(|x| x.f64()).transpose()?,
            checkpoint: c.opt("checkpoint").map(|x| x.string()).transpose()?,
            shard,
            interval: c.opt("interval").map(|x| x.u64()).transpose()?.map(|n| n as usize),
            stop_after_items: c.opt("stop_after_items").map(|x| x.u64()).transpose()?,
            stream_store: c.opt("stream_store").map(|x| x.bool()).transpose()?.unwrap_or(false),
            seed_store: c.opt("seed_store").map(|x| x.bool()).transpose()?.unwrap_or(false),
        })
    }

    /// Parses a request from JSON text.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let v = serde_json::from_str(text).map_err(|e| {
            SpecError::coded(ErrorCode::InvalidJson, "$", format!("invalid JSON: {e}"))
        })?;
        Self::from_value(&v)
    }

    /// Serialises to compact JSON. Field order is fixed and absent
    /// optionals are omitted, so identical requests encode to identical
    /// bytes.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("request serialises")
    }

    /// Checks the whole request field matrix; the first violation is
    /// returned, anchored at the envelope member. Field combinations no
    /// runner honors are *rejected*, never silently dropped — the
    /// [`ErrorCode::Conflict`] class.
    pub fn validate(&self) -> Result<(), SpecError> {
        let conflict =
            |path: &str, msg: String| Err(SpecError::coded(ErrorCode::Conflict, path, msg));
        let missing =
            |path: &str, msg: &str| Err(SpecError::coded(ErrorCode::Schema, path, msg.to_string()));
        let action = self.action.as_str();

        // The checkpoint family: checkpointing is sweep execution's resume
        // machinery; the dependent knobs are meaningless without it.
        if self.checkpoint.is_some() && self.action != ExecAction::Sweep {
            return conflict(
                "$.checkpoint",
                format!(
                    "checkpointing applies to sweep execution (a {action} request has no \
                     resume cursor); remove $.checkpoint or use action \"sweep\""
                ),
            );
        }
        if self.checkpoint.is_none() {
            for (path, present) in [
                ("$.shard", self.shard.is_some()),
                ("$.interval", self.interval.is_some()),
                ("$.stop_after_items", self.stop_after_items.is_some()),
            ] {
                if present {
                    return conflict(
                        path,
                        format!("{path} requires $.checkpoint (the on-disk sweep store)"),
                    );
                }
            }
        }
        if self.stream_store {
            match &self.checkpoint {
                None => {
                    return conflict(
                        "$.stream_store",
                        "$.stream_store streams the checkpoint store over the wire, so it \
                         requires $.checkpoint"
                            .into(),
                    )
                }
                Some(name) if !crate::wire::is_safe_store_name(name) => {
                    return Err(SpecError::new(
                        "$.checkpoint",
                        format!(
                            "with $.stream_store, $.checkpoint is a store name the worker \
                             resolves under its own scratch root, not a path — {name:?} must \
                             be at most 128 characters of [A-Za-z0-9._-] starting with an \
                             alphanumeric"
                        ),
                    ));
                }
                Some(_) => {}
            }
        }
        if self.seed_store && !self.stream_store {
            return conflict(
                "$.seed_store",
                "$.seed_store seeds a streamed store, so it requires $.stream_store".into(),
            );
        }
        if let Some(s) = self.shard {
            if s.count < 1 || s.index >= s.count {
                return Err(SpecError::new(
                    "$.shard",
                    format!(
                        "shard {}/{} is not a valid shard (need index < count)",
                        s.index, s.count
                    ),
                ));
            }
        }
        if self.interval == Some(0) {
            return Err(SpecError::new("$.interval", "checkpoint interval must be at least 1"));
        }
        if let Some(b) = &self.backend {
            parse_backend(b).map_err(|m| SpecError::new("$.backend", m))?;
        }
        if let Some(r) = self.requirement_ms {
            if !(r.is_finite() && r > 0.0) {
                return Err(SpecError::new(
                    "$.requirement_ms",
                    format!("requirement must be positive, got {r}"),
                ));
            }
        }

        match self.action {
            ExecAction::Run => {
                if self.spec.is_none() {
                    return missing("$.spec", "a run request needs a scenario spec");
                }
                if self.sweep.is_some() {
                    return conflict(
                        "$.sweep",
                        "a run request executes one scenario; use action \"sweep\" to run a \
                         sweep document"
                            .into(),
                    );
                }
                if self.base.is_some() {
                    return conflict(
                        "$.base",
                        "a base spec accompanies a sweep document, not a single run".into(),
                    );
                }
                // The silent-drop hazard the spec-level check cannot see:
                // the override flips a fault-bearing event spec back to
                // analytic, which would skip the fault schedule entirely.
                if self.backend.as_deref() == Some("analytic") {
                    if let Some(spec) = &self.spec {
                        if !spec.faults.is_empty() {
                            return conflict(
                                "$.backend",
                                "the spec schedules faults, which replay on the event \
                                 calendar; an analytic override would silently skip them — \
                                 drop the override or clear $.spec.faults"
                                    .into(),
                            );
                        }
                    }
                }
            }
            ExecAction::Sweep => {
                if self.sweep.is_none() {
                    return missing("$.sweep", "a sweep request needs a sweep spec");
                }
                if self.base.is_none() {
                    return missing(
                        "$.base",
                        "a sweep request needs the base scenario spec inline (the wire has \
                         no filesystem to resolve the sweep's base reference)",
                    );
                }
                if self.spec.is_some() {
                    return conflict(
                        "$.spec",
                        "a sweep request takes its scenarios from $.sweep and $.base; use \
                         action \"run\" to execute one scenario spec"
                            .into(),
                    );
                }
                for (path, present) in [
                    ("$.backend", self.backend.is_some()),
                    ("$.seed", self.seed.is_some()),
                    ("$.campaign_seed", self.campaign_seed.is_some()),
                    ("$.passes", self.passes.is_some()),
                    ("$.sample_interval_s", self.sample_interval_s.is_some()),
                    ("$.requirement_ms", self.requirement_ms.is_some()),
                ] {
                    if present {
                        return conflict(
                            path,
                            format!(
                                "{path} is a run-level override no sweep runner honors — \
                                 sweep the parameter with an axis (or set it in the base \
                                 spec) instead"
                            ),
                        );
                    }
                }
            }
            ExecAction::Validate => {
                match (&self.spec, &self.sweep) {
                    (None, None) => {
                        return missing(
                            "$.spec",
                            "a validate request needs a scenario spec or a sweep spec",
                        )
                    }
                    (Some(_), Some(_)) => {
                        return conflict(
                            "$.sweep",
                            "validate one document per request: send either $.spec or \
                             $.sweep, not both"
                                .into(),
                        )
                    }
                    (Some(_), None) if self.base.is_some() => {
                        return conflict(
                            "$.base",
                            "a base spec accompanies a sweep document, not a scenario spec".into(),
                        )
                    }
                    (None, Some(_)) if self.base.is_none() => {
                        return missing(
                            "$.base",
                            "validating a sweep needs the base scenario spec inline",
                        )
                    }
                    _ => {}
                }
                for (path, present) in [
                    ("$.backend", self.backend.is_some()),
                    ("$.seed", self.seed.is_some()),
                    ("$.campaign_seed", self.campaign_seed.is_some()),
                    ("$.passes", self.passes.is_some()),
                    ("$.sample_interval_s", self.sample_interval_s.is_some()),
                    ("$.requirement_ms", self.requirement_ms.is_some()),
                ] {
                    if present {
                        return conflict(
                            path,
                            format!(
                                "{path} is an execution override; a validate request runs \
                                     nothing, so it honors none"
                            ),
                        );
                    }
                }
            }
        }
        Ok(())
    }
}

impl Serialize for ShardSel {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("index".into(), Value::U64(u64::from(self.index))),
            ("count".into(), Value::U64(u64::from(self.count))),
        ])
    }
}

impl Serialize for ExecRequest {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> =
            vec![("action".into(), Value::String(self.action.as_str().into()))];
        let mut put = |name: &str, v: Option<Value>| {
            if let Some(v) = v {
                pairs.push((name.into(), v));
            }
        };
        put("spec", self.spec.as_ref().map(Serialize::to_value));
        put("sweep", self.sweep.as_ref().map(Serialize::to_value));
        put("base", self.base.clone());
        put("backend", self.backend.clone().map(Value::String));
        put("seed", self.seed.map(Value::U64));
        put("campaign_seed", self.campaign_seed.map(Value::U64));
        put("passes", self.passes.map(|n| Value::U64(u64::from(n))));
        put("sample_interval_s", self.sample_interval_s.map(Value::F64));
        put("requirement_ms", self.requirement_ms.map(Value::F64));
        put("checkpoint", self.checkpoint.clone().map(Value::String));
        put("shard", self.shard.as_ref().map(Serialize::to_value));
        put("interval", self.interval.map(|n| Value::U64(n as u64)));
        put("stop_after_items", self.stop_after_items.map(Value::U64));
        // Flags serialise only when set, so every pre-dispatch request
        // byte string is unchanged.
        put("stream_store", self.stream_store.then_some(Value::Bool(true)));
        put("seed_store", self.seed_store.then_some(Value::Bool(true)));
        Value::Object(pairs)
    }
}

/// Re-anchors a document-decode error under the envelope member that
/// carried the document: `$.grid.cols` in a spec sent as `$.spec` becomes
/// `$.spec.grid.cols`.
fn reanchor(prefix: &str, mut e: SpecError) -> SpecError {
    let rest = e.path.strip_prefix('$').unwrap_or(&e.path);
    e.path = format!("{prefix}{rest}");
    e
}

// ---------------------------------------------------------------------------
// Reports.
// ---------------------------------------------------------------------------

/// Aggregates of one executed single-scenario campaign — the `run`
/// counterpart of a sweep's [`VariantReport`]. Contains no wall times, so
/// the serialised form is bitwise identical across runs and pool sizes.
///
/// **Cell enumeration is key-scheme dependent.** Legacy-scheme grids
/// (≤ [`crate::spec::PACKABLE_GRID_DIM`] per side) list every reported
/// cell in [`RunReport::cells`], exactly as before the widening. A
/// wide-scheme mega-grid would enumerate up to millions of cells, so its
/// report leaves `cells` empty and carries the two-level
/// [`crate::hvt`] super-cell hierarchy in [`RunReport::super_cells`]
/// instead — navigable tiles with quantized per-super-cell statistics.
/// The field is omitted (not `null`) from legacy reports, so every
/// pre-widening report byte is unchanged.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario name.
    pub scenario: String,
    /// Execution backend tag.
    pub backend: String,
    /// Scenario seed (calibration + streams).
    pub scenario_seed: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Grid traversals.
    pub passes: u32,
    /// Sampling cadence, seconds.
    pub sample_interval_s: f64,
    /// Requirement the exceedance figure uses, ms.
    pub requirement_ms: f64,
    /// Total samples collected.
    pub total_samples: u64,
    /// Grand mean over reported cells, ms.
    pub grand_mean_ms: f64,
    /// Reported mean minimum, ms.
    pub mean_min_ms: f64,
    /// Reported mean maximum, ms.
    pub mean_max_ms: f64,
    /// Reported σ minimum, ms.
    pub std_min_ms: f64,
    /// Reported σ maximum, ms.
    pub std_max_ms: f64,
    /// Grand-mean exceedance over the requirement, percent.
    pub exceedance_pct: f64,
    /// Per-cell statistics of reported cells (legacy-scheme grids; empty
    /// for wide-scheme mega-grids).
    pub cells: Vec<CellSummary>,
    /// The hierarchical super-cell summary (wide-scheme grids only).
    pub super_cells: Option<HvtReport>,
}

impl Serialize for RunReport {
    // Hand-written (not derived) so `super_cells` is *omitted* when absent:
    // a derived `Option` would serialise `null` and change every legacy
    // report's bytes.
    fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("scenario".to_string(), self.scenario.to_value()),
            ("backend".to_string(), self.backend.to_value()),
            ("scenario_seed".to_string(), self.scenario_seed.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("passes".to_string(), self.passes.to_value()),
            ("sample_interval_s".to_string(), self.sample_interval_s.to_value()),
            ("requirement_ms".to_string(), self.requirement_ms.to_value()),
            ("total_samples".to_string(), self.total_samples.to_value()),
            ("grand_mean_ms".to_string(), self.grand_mean_ms.to_value()),
            ("mean_min_ms".to_string(), self.mean_min_ms.to_value()),
            ("mean_max_ms".to_string(), self.mean_max_ms.to_value()),
            ("std_min_ms".to_string(), self.std_min_ms.to_value()),
            ("std_max_ms".to_string(), self.std_max_ms.to_value()),
            ("exceedance_pct".to_string(), self.exceedance_pct.to_value()),
            ("cells".to_string(), self.cells.to_value()),
        ];
        if let Some(h) = &self.super_cells {
            pairs.push(("super_cells".to_string(), h.to_value()));
        }
        Value::Object(pairs)
    }
}

impl RunReport {
    fn from_field(
        spec: &ScenarioSpec,
        backend: ExecBackend,
        config: CampaignConfig,
        field: &CellField,
        requirement_ms: f64,
    ) -> Self {
        let grand_mean_ms = field.grand_mean_ms();
        let (mean_min_ms, mean_max_ms) =
            field.mean_extrema().map_or((0.0, 0.0), |(a, b)| (a.mean_ms, b.mean_ms));
        let (std_min_ms, std_max_ms) =
            field.std_extrema().map_or((0.0, 0.0), |(a, b)| (a.std_ms, b.std_ms));
        let wide = KeyScheme::for_grid(field.grid()) == KeyScheme::Wide;
        let cells = if wide {
            Vec::new()
        } else {
            field
                .reported()
                .into_iter()
                .map(|s| CellSummary {
                    cell: s.cell.label(),
                    count: s.count,
                    mean_ms: s.mean_ms,
                    std_ms: s.std_ms,
                })
                .collect()
        };
        let super_cells =
            wide.then(|| hvt::build(field, &HvtConfig::for_grid(field.grid(), requirement_ms)));
        Self {
            scenario: spec.name.clone(),
            backend: backend.to_string(),
            scenario_seed: spec.seed,
            seed: config.seed,
            passes: config.passes,
            sample_interval_s: config.sample_interval_s,
            requirement_ms,
            total_samples: field.total_samples(),
            grand_mean_ms,
            mean_min_ms,
            mean_max_ms,
            std_min_ms,
            std_max_ms,
            exceedance_pct: (grand_mean_ms - requirement_ms) / requirement_ms * 100.0,
            cells,
            super_cells,
        }
    }

    /// Serialises to pretty JSON (deterministic, like the report itself).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("run report serialises")
    }
}

/// A run's full output: the compiled scenario (shared with the cache),
/// the per-cell field, and the report — callers that render heatmaps or
/// gap analyses use the field; wire clients see only the report.
pub struct RunOutput {
    /// The compiled scenario the campaign ran on.
    pub scenario: Arc<Scenario>,
    /// The campaign's per-cell field.
    pub field: CellField,
    /// The deterministic report.
    pub report: RunReport,
}

impl std::fmt::Debug for RunOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOutput")
            .field("scenario", &self.scenario.name)
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

/// What [`execute`] produced — one variant per [`ExecAction`] outcome.
#[derive(Debug)]
pub enum ExecReport {
    /// The payload validated cleanly (nothing ran).
    Valid {
        /// `"scenario"` or `"sweep"`.
        kind: &'static str,
        /// The validated document's name.
        name: String,
        /// Variant count, for sweeps.
        variants: Option<usize>,
    },
    /// A completed single-scenario run.
    Run(Box<RunOutput>),
    /// A completed sweep (in-memory, or checkpointed to completion).
    Sweep(Box<SweepRun>),
    /// A checkpointed shard finished its disjoint run range; merge the
    /// shard stores for the report.
    ShardComplete {
        /// This shard.
        shard_index: u32,
        /// Total shards.
        shard_count: u32,
        /// Items this shard folded in total.
        done_items: u64,
    },
    /// A checkpointed run stopped at its `stop_after_items` cursor.
    Interrupted {
        /// Items folded so far (the committed cursor position).
        done_items: u64,
        /// The shard's work-list length.
        total_items: u64,
    },
}

impl ExecReport {
    /// The report's canonical JSON rendering — what the wire protocol
    /// ships and `sixg-cli --json` writes, so the same request produces
    /// byte-identical payloads over every surface. Sweep reports render
    /// exactly as [`crate::sweep::SweepReport::to_json`].
    pub fn to_json(&self) -> String {
        match self {
            ExecReport::Valid { kind, name, variants } => {
                let mut pairs = vec![
                    ("valid".into(), Value::Bool(true)),
                    ("kind".into(), Value::String((*kind).into())),
                    ("name".into(), Value::String(name.clone())),
                ];
                if let Some(n) = variants {
                    pairs.push(("variants".into(), Value::U64(*n as u64)));
                }
                serde_json::to_string_pretty(&Value::Object(pairs)).expect("report serialises")
            }
            ExecReport::Run(out) => out.report.to_json(),
            ExecReport::Sweep(run) => run.report.to_json(),
            ExecReport::ShardComplete { shard_index, shard_count, done_items } => {
                serde_json::to_string_pretty(&Value::Object(vec![
                    ("shard_complete".into(), Value::Bool(true)),
                    ("shard_index".into(), Value::U64(u64::from(*shard_index))),
                    ("shard_count".into(), Value::U64(u64::from(*shard_count))),
                    ("done_items".into(), Value::U64(*done_items)),
                ]))
                .expect("report serialises")
            }
            ExecReport::Interrupted { done_items, total_items } => {
                serde_json::to_string_pretty(&Value::Object(vec![
                    ("interrupted".into(), Value::Bool(true)),
                    ("done_items".into(), Value::U64(*done_items)),
                    ("total_items".into(), Value::U64(*total_items)),
                ]))
                .expect("report serialises")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The compiled-scenario cache.
// ---------------------------------------------------------------------------

/// Content hash of a spec's *canonical* form — campaign parameters and
/// backend zeroed out, because [`Scenario::from_spec`] does not consume
/// them (the same canonicalisation sweep planning deduplicates on). Two
/// specs that differ only in seed policy or backend share one hash, one
/// cache entry, and one calibration.
pub fn scenario_content_hash(spec: &ScenarioSpec) -> u64 {
    let mut key = spec.clone();
    key.campaign = CampaignDef::default();
    key.backend = "analytic".into();
    fnv1a64(key.to_json().as_bytes())
}

/// Default number of compiled scenarios an [`Executor`] keeps hot.
pub const DEFAULT_CACHE_CAPACITY: usize = 8;

struct CacheEntry {
    hash: u64,
    key: ScenarioSpec,
    scenario: Arc<Scenario>,
    last_used: u64,
}

/// An LRU cache of compiled [`Scenario`]s keyed by canonical spec content
/// hash (with full-key equality behind the hash, so a hash collision can
/// never serve the wrong scenario). Compilation is a pure function of the
/// canonical spec, so hits and cold compiles are interchangeable bit for
/// bit — the cache affects latency, never results.
pub struct ScenarioCache {
    entries: Vec<CacheEntry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ScenarioCache {
    /// An empty cache bounded to `capacity` compiled scenarios.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        Self { entries: Vec::new(), capacity, tick: 0, hits: 0, misses: 0 }
    }

    /// Returns the cached compiled scenario for `spec`'s canonical key, or
    /// compiles, caches (evicting the least-recently-used entry at
    /// capacity) and returns it.
    pub fn get_or_compile(&mut self, spec: &ScenarioSpec) -> Result<Arc<Scenario>, SpecError> {
        let mut key = spec.clone();
        key.campaign = CampaignDef::default();
        key.backend = "analytic".into();
        let hash = fnv1a64(key.to_json().as_bytes());
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.hash == hash && e.key == key) {
            e.last_used = self.tick;
            self.hits += 1;
            return Ok(Arc::clone(&e.scenario));
        }
        let scenario = Arc::new(Scenario::from_spec(spec)?);
        self.misses += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("capacity >= 1, so a full cache is non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push(CacheEntry {
            hash,
            key,
            scenario: Arc::clone(&scenario),
            last_used: self.tick,
        });
        Ok(scenario)
    }

    /// Cached scenarios currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that compiled cold.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

/// Executes a request with a one-shot scenario cache — the stateless
/// entry point. Long-lived callers (the `sixg-serve` daemon) hold an
/// [`Executor`] instead so compiled scenarios stay hot across requests.
pub fn execute(req: &ExecRequest) -> Result<ExecReport, SpecError> {
    Executor::new().execute(req)
}

/// A long-lived execution context: the facade plus a shared
/// [`ScenarioCache`]. `&self` methods take the cache mutex only around
/// compilation, so concurrent callers (one per daemon connection)
/// serialise the cheap compile step and run their campaigns on the shared
/// rayon pool concurrently — which is safe *and* deterministic, because
/// every campaign folds its own work list in its own order.
pub struct Executor {
    cache: Mutex<ScenarioCache>,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// An executor with the default cache capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// An executor whose cache is bounded to `capacity` scenarios.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { cache: Mutex::new(ScenarioCache::new(capacity)) }
    }

    /// `(hits, misses, len)` of the shared cache — the daemon's stats
    /// surface.
    pub fn cache_stats(&self) -> (u64, u64, usize) {
        let c = self.cache.lock().expect("cache lock");
        (c.hits(), c.misses(), c.len())
    }

    /// Validates and executes a request.
    pub fn execute(&self, req: &ExecRequest) -> Result<ExecReport, SpecError> {
        self.execute_streaming(req, |_, _| {})
    }

    /// [`Self::execute`], streaming per-variant sweep results: `emit` is
    /// called with `(run index, report)` for run 0 (the base) and every
    /// variant the moment its last sample folds — in run order, while
    /// later variants are still executing. The emitted reports carry
    /// exactly the bits of the final [`SweepRun`]'s, so a streaming
    /// consumer and a whole-report consumer can never disagree. Runs and
    /// validates emit nothing.
    pub fn execute_streaming(
        &self,
        req: &ExecRequest,
        mut emit: impl FnMut(usize, &VariantReport),
    ) -> Result<ExecReport, SpecError> {
        req.validate()?;
        match req.action {
            ExecAction::Validate => self.do_validate(req),
            ExecAction::Run => self.do_run(req),
            ExecAction::Sweep => self.do_sweep(req, &mut emit),
        }
    }

    fn do_validate(&self, req: &ExecRequest) -> Result<ExecReport, SpecError> {
        if let Some(spec) = &req.spec {
            if let Some(e) = spec.validate().into_iter().next() {
                return Err(e);
            }
            return Ok(ExecReport::Valid {
                kind: "scenario",
                name: spec.name.clone(),
                variants: None,
            });
        }
        let sweep = build_sweep(req)?;
        Ok(ExecReport::Valid {
            kind: "sweep",
            name: sweep.spec.name.clone(),
            variants: Some(sweep.spec.variant_count()),
        })
    }

    fn do_run(&self, req: &ExecRequest) -> Result<ExecReport, SpecError> {
        let mut spec = req.spec.clone().expect("validated: run has a spec");
        if let Some(b) = &req.backend {
            spec.backend = b.clone();
        }
        if let Some(s) = req.seed {
            spec.seed = s;
        }
        if let Some(s) = req.campaign_seed {
            spec.campaign.seed = s;
        }
        if let Some(p) = req.passes {
            spec.campaign.passes = p;
        }
        if let Some(i) = req.sample_interval_s {
            spec.campaign.sample_interval_s = i;
        }
        if let Some(e) = spec.validate().into_iter().next() {
            return Err(e);
        }
        let scenario = self.cache.lock().expect("cache lock").get_or_compile(&spec)?;
        let backend = parse_backend(&spec.backend).expect("validated backend");
        let config = CampaignConfig {
            seed: spec.campaign.seed,
            sample_interval_s: spec.campaign.sample_interval_s,
            passes: spec.campaign.passes,
        };
        let field = run_field(&scenario, config, backend);
        let requirement_ms = req.requirement_ms.unwrap_or(DEFAULT_REQUIREMENT_MS);
        let report = RunReport::from_field(&spec, backend, config, &field, requirement_ms);
        Ok(ExecReport::Run(Box::new(RunOutput { scenario, field, report })))
    }

    fn do_sweep(
        &self,
        req: &ExecRequest,
        emit: &mut impl FnMut(usize, &VariantReport),
    ) -> Result<ExecReport, SpecError> {
        // Store streaming is a wire-protocol feature: only the serve
        // worker path (`dispatch::run_streamed_shard`) has a frame stream
        // to write to. Rejecting here keeps the no-silent-drop contract —
        // an in-process caller asking for it is confused, not ignorable.
        if req.stream_store {
            return Err(SpecError::coded(
                ErrorCode::Conflict,
                "$.stream_store",
                "store streaming is honored by a sixg-serve worker, not in-process \
                 execution — drop $.stream_store or send the request to a worker"
                    .to_string(),
            ));
        }

        let sweep = build_sweep(req)?;

        if let Some(dir) = &req.checkpoint {
            // Checkpointed execution spills to disk between pool rounds;
            // its resume cursor, not the emit stream, is the incremental
            // surface.
            let mut cfg = CheckpointConfig::new(dir.as_str());
            if let Some(s) = req.shard {
                cfg.shard_index = s.index;
                cfg.shard_count = s.count;
            }
            if let Some(k) = req.interval {
                cfg.interval = k;
            }
            cfg.stop_after_items = req.stop_after_items;
            return match run_checkpointed(&sweep, &cfg).map_err(checkpoint_spec_error)? {
                crate::store::CheckpointOutcome::Complete(run) => Ok(ExecReport::Sweep(run)),
                crate::store::CheckpointOutcome::ShardComplete {
                    shard_index,
                    shard_count,
                    done_items,
                } => Ok(ExecReport::ShardComplete { shard_index, shard_count, done_items }),
                crate::store::CheckpointOutcome::Interrupted { done_items, total_items } => {
                    Ok(ExecReport::Interrupted { done_items, total_items })
                }
            };
        }

        let plan = {
            let mut cache = self.cache.lock().expect("cache lock");
            sweep.plan_with_cache(Some(&mut cache))?
        };
        let runners = plan.runners();
        let items = plan.items(&runners);
        let mut fields: Vec<CellField> =
            (0..plan.runs.len()).map(|r| CellField::new(plan.grid_of(r).clone())).collect();
        let req_ms = sweep.spec.requirement_ms;
        let mut base_ref: Option<(f64, f64)> = None;
        let mut done = 0usize;
        // The work list is run-major and folds in list order, so once the
        // fold reaches run `ri`, every run before it is complete — emit
        // them. The reports are built with exactly `build_sweep_run`'s
        // arguments, so streamed bits equal final-report bits.
        run_items_streaming(
            &items,
            |(ri, shard), buf| runners[ri as usize].collect_shard_into(shard, buf),
            |(ri, shard), buf| {
                emit_completed(&plan, req_ms, &fields, &mut base_ref, &mut done, ri as usize, emit);
                let field = &mut fields[ri as usize];
                for &v in buf {
                    field.push(shard.cell, v);
                }
            },
        );
        emit_completed(&plan, req_ms, &fields, &mut base_ref, &mut done, plan.runs.len(), emit);
        Ok(ExecReport::Sweep(Box::new(plan.build_sweep_run(&sweep, fields))))
    }
}

/// Emits every fully-folded run below `upto`, in run order, capturing the
/// base run's `(grand mean, exceedance)` reference for the variants'
/// deltas — the same fold [`crate::sweep`]'s report construction applies.
fn emit_completed(
    plan: &crate::sweep::RunPlan,
    req_ms: f64,
    fields: &[CellField],
    base_ref: &mut Option<(f64, f64)>,
    done: &mut usize,
    upto: usize,
    emit: &mut impl FnMut(usize, &VariantReport),
) {
    while *done < upto {
        let r = *done;
        let meta = &plan.runs[r];
        let report = VariantReport::from_field(
            meta.label.clone(),
            meta.settings.clone(),
            meta.backend,
            meta.config,
            &fields[r],
            req_ms,
            if r == 0 { None } else { *base_ref },
        );
        if r == 0 {
            *base_ref = Some((report.grand_mean_ms, report.exceedance_pct));
        }
        emit(r, &report);
        *done += 1;
    }
}

/// Builds the sweep from the request's inline documents; checkpointed
/// requests lift the in-memory variant cap (accumulators spill to disk).
/// Errors anchor inside the sweep document (or the base spec, named in
/// the message) — see the module docs on error anchoring.
pub(crate) fn build_sweep(req: &ExecRequest) -> Result<Sweep, SpecError> {
    let sweep = req.sweep.clone().expect("validated: sweep present");
    let base = req.base.as_ref().expect("validated: base present");
    let base_json = serde_json::to_string(base).expect("value serialises");
    if req.checkpoint.is_some() {
        Sweep::new_unbounded(sweep, &base_json)
    } else {
        Sweep::new(sweep, &base_json)
    }
}

/// Maps a checkpoint failure into the facade's error surface: sweep-level
/// failures pass through; store-level failures become [`ErrorCode::Io`]
/// errors anchored at the request's `$.checkpoint` member (the store
/// error text already names the offending file).
pub(crate) fn checkpoint_spec_error(e: CheckpointError) -> SpecError {
    match e {
        CheckpointError::Spec(e) => e,
        CheckpointError::Store(e) => SpecError::coded(ErrorCode::Io, "$.checkpoint", e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::with_thread_count;

    fn flat_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::klagenfurt();
        spec.campaign.passes = 1;
        spec
    }

    fn flap_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::klagenfurt_flap();
        spec.campaign.passes = 1;
        spec
    }

    fn field_bits(field: &CellField) -> Vec<(u64, u64, u64)> {
        field
            .reported()
            .into_iter()
            .map(|s| (s.count, s.mean_ms.to_bits(), s.std_ms.to_bits()))
            .collect()
    }

    /// The deprecated shims and the facade share one runner per backend:
    /// bit-for-bit equal fields, so migrating a caller can never change
    /// results.
    #[test]
    #[allow(deprecated)]
    fn shims_match_run_field_bitwise() {
        let clean = Scenario::from_spec(&flat_spec()).expect("compiles");
        let flap = Scenario::from_spec(&flap_spec()).expect("compiles");
        let config = CampaignConfig { passes: 1, ..Default::default() };

        let analytic = run_field(&clean, config, ExecBackend::Analytic);
        assert_eq!(
            field_bits(&analytic),
            field_bits(&crate::parallel::run_parallel(&clean, config)),
        );
        assert_eq!(
            field_bits(&analytic),
            field_bits(&crate::parallel::run_backend(&clean, config, ExecBackend::Analytic)),
        );

        let event = run_field(&clean, config, ExecBackend::Event);
        assert_eq!(
            field_bits(&event),
            field_bits(&crate::event_backend::run_event_parallel(&clean, config)),
        );

        let faulted = run_field(&flap, config, ExecBackend::Event);
        assert_eq!(
            field_bits(&faulted),
            field_bits(&crate::faults::run_faulted_parallel(&flap, config)),
        );
    }

    /// A minimal wide-scheme spec: one side past [`PACKABLE_GRID_DIM`]
    /// flips the key scheme while keeping the campaign small enough for a
    /// debug-build test.
    fn wide_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::skopje();
        spec.name = "wide-test".into();
        spec.grid.cols = 257;
        spec.grid.rows = 12;
        spec.campaign.passes = 1;
        spec
    }

    #[test]
    fn wide_grid_run_reports_super_cells_and_is_pool_invariant() {
        let req = ExecRequest::run(wide_spec());
        let exec = Executor::new();
        let a = with_thread_count(1, || exec.execute(&req).expect("runs").to_json());
        let b = with_thread_count(4, || exec.execute(&req).expect("runs").to_json());
        assert_eq!(a, b, "wide-scheme reports must be pool-size invariant");

        match exec.execute(&req).expect("runs") {
            ExecReport::Run(out) => {
                let r = &out.report;
                assert!(r.cells.is_empty(), "mega-grids must not enumerate cells");
                let h = r.super_cells.as_ref().expect("wide grids summarise hierarchically");
                assert_eq!(h.reported_cells + h.masked_cells, 257 * 12);
                assert!(h.reported_cells > 0, "the campaign must report cells");
                assert!(h.tiles.len() > 1, "level 1 must partition the grid");
                let bucketed: u64 =
                    h.tiles.iter().flat_map(|t| &t.super_cells).map(|s| s.samples).sum();
                assert!(bucketed > 0 && bucketed <= r.total_samples);
                assert!(r.to_json().contains("\"super_cells\""));
            }
            other => panic!("expected a run report, got {other:?}"),
        }
    }

    #[test]
    fn legacy_reports_omit_the_super_cell_member() {
        match execute(&ExecRequest::run(flat_spec())).expect("runs") {
            ExecReport::Run(out) => {
                assert!(out.report.super_cells.is_none());
                assert!(
                    !out.report.to_json().contains("super_cells"),
                    "legacy report bytes must not grow a null member"
                );
            }
            other => panic!("expected a run report, got {other:?}"),
        }
    }

    // -- request validation matrix ------------------------------------------

    #[test]
    fn checkpoint_on_a_run_request_is_a_conflict() {
        let mut req = ExecRequest::run(flat_spec());
        req.checkpoint = Some("store".into());
        let e = req.validate().expect_err("must reject");
        assert_eq!(e.code, ErrorCode::Conflict);
        assert_eq!(e.path, "$.checkpoint");
    }

    #[test]
    fn shard_without_checkpoint_is_a_conflict() {
        let sweep = SweepSpec::from_json(
            r#"{"name": "s", "base": "b", "axes": [{"kind": "seeds", "start": 1, "count": 2}]}"#,
        )
        .expect("parses");
        let base = serde_json::from_str(&flat_spec().to_json()).expect("parses");
        let mut req = ExecRequest::sweep(sweep, base);
        req.shard = Some(ShardSel { index: 0, count: 2 });
        let e = req.validate().expect_err("must reject");
        assert_eq!(e.code, ErrorCode::Conflict);
        assert_eq!(e.path, "$.shard");

        req.checkpoint = Some("store".into());
        req.validate().expect("checkpoint makes the shard legal");
    }

    #[test]
    fn analytic_override_on_a_faulted_spec_is_a_conflict() {
        let mut req = ExecRequest::run(flap_spec());
        req.backend = Some("analytic".into());
        let e = req.validate().expect_err("must reject");
        assert_eq!(e.code, ErrorCode::Conflict);
        assert_eq!(e.path, "$.backend");

        // The event override on the same spec is the supported path.
        req.backend = Some("event".into());
        req.validate().expect("event override is legal");
    }

    #[test]
    fn run_overrides_on_a_sweep_request_are_conflicts() {
        let sweep = SweepSpec::from_json(
            r#"{"name": "s", "base": "b", "axes": [{"kind": "seeds", "start": 1, "count": 2}]}"#,
        )
        .expect("parses");
        let base: Value = serde_json::from_str(&flat_spec().to_json()).expect("parses");
        type SetField = fn(&mut ExecRequest);
        let overrides: [(SetField, &str); 6] = [
            (|r| r.backend = Some("event".into()), "$.backend"),
            (|r| r.seed = Some(7), "$.seed"),
            (|r| r.campaign_seed = Some(7), "$.campaign_seed"),
            (|r| r.passes = Some(2), "$.passes"),
            (|r| r.sample_interval_s = Some(1.0), "$.sample_interval_s"),
            (|r| r.requirement_ms = Some(10.0), "$.requirement_ms"),
        ];
        for (set, path) in overrides {
            let mut req = ExecRequest::sweep(sweep.clone(), base.clone());
            set(&mut req);
            let e = req.validate().expect_err("must reject");
            assert_eq!(e.code, ErrorCode::Conflict, "{path}");
            assert_eq!(e.path, path);
        }
    }

    #[test]
    fn missing_documents_are_schema_errors() {
        let e = ExecRequest::empty(ExecAction::Run).validate().expect_err("no spec");
        assert_eq!((e.code, e.path.as_str()), (ErrorCode::Schema, "$.spec"));
        let e = ExecRequest::empty(ExecAction::Sweep).validate().expect_err("no sweep");
        assert_eq!((e.code, e.path.as_str()), (ErrorCode::Schema, "$.sweep"));
        let e = ExecRequest::empty(ExecAction::Validate).validate().expect_err("no document");
        assert_eq!((e.code, e.path.as_str()), (ErrorCode::Schema, "$.spec"));
    }

    #[test]
    fn request_json_round_trips_and_is_stable() {
        let mut req = ExecRequest::run(flat_spec());
        req.backend = Some("event".into());
        req.passes = Some(2);
        let text = req.to_json();
        let back = ExecRequest::from_json(&text).expect("round-trips");
        assert_eq!(back, req);
        assert_eq!(back.to_json(), text, "encoding must be stable");

        let e = ExecRequest::from_json("{\"action\": ").expect_err("invalid JSON");
        assert_eq!(e.code, ErrorCode::InvalidJson);
        let e = ExecRequest::from_json("{}").expect_err("missing action");
        assert_eq!(e.code, ErrorCode::Schema);
    }

    #[test]
    fn document_decode_errors_reanchor_under_the_envelope() {
        let e = ExecRequest::from_json(r#"{"action": "run", "spec": {"name": 3}}"#)
            .expect_err("bad spec");
        assert!(e.path.starts_with("$.spec."), "{}", e.path);
        assert_eq!(e.code, ErrorCode::Schema);
    }

    // -- scenario cache ------------------------------------------------------

    #[test]
    fn committed_specs_key_the_cache_without_collisions() {
        let specs = [
            ScenarioSpec::klagenfurt(),
            ScenarioSpec::klagenfurt_flap(),
            ScenarioSpec::skopje(),
            ScenarioSpec::megacity(),
        ];
        let hashes: Vec<u64> = specs.iter().map(scenario_content_hash).collect();
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(
                    hashes[i], hashes[j],
                    "{} and {} must not collide",
                    specs[i].name, specs[j].name
                );
            }
        }

        let mut cache = ScenarioCache::new(8);
        for spec in &specs {
            cache.get_or_compile(spec).expect("compiles");
        }
        assert_eq!((cache.len(), cache.hits(), cache.misses()), (4, 0, 4));
        for spec in &specs {
            cache.get_or_compile(spec).expect("cached");
        }
        assert_eq!((cache.len(), cache.hits(), cache.misses()), (4, 4, 4));
    }

    #[test]
    fn campaign_and_backend_do_not_split_cache_entries() {
        let mut cache = ScenarioCache::new(2);
        let a = cache.get_or_compile(&flat_spec()).expect("compiles");
        let mut other = flat_spec();
        other.campaign.seed = 99;
        other.campaign.passes = 30;
        other.backend = "event".into();
        let b = cache.get_or_compile(&other).expect("cached");
        assert!(Arc::ptr_eq(&a, &b), "seed policy and backend are not compiled state");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn cache_hit_and_cold_compile_return_identical_bytes() {
        let hot = Executor::new();
        let req = ExecRequest::run(flat_spec());
        let cold_json = hot.execute(&req).expect("cold run").to_json();
        let hit_json = hot.execute(&req).expect("hot run").to_json();
        let (hits, misses, len) = hot.cache_stats();
        assert_eq!((hits, misses, len), (1, 1, 1), "second run must hit the cache");
        assert_eq!(cold_json, hit_json);

        let fresh_json = execute(&req).expect("fresh executor").to_json();
        assert_eq!(cold_json, fresh_json);
    }

    #[test]
    fn cache_evicts_least_recently_used_at_capacity() {
        let mut cache = ScenarioCache::new(2);
        let kla = ScenarioSpec::klagenfurt();
        let flap = ScenarioSpec::klagenfurt_flap();
        let sko = ScenarioSpec::skopje();
        cache.get_or_compile(&kla).expect("kla");
        cache.get_or_compile(&flap).expect("flap");
        cache.get_or_compile(&kla).expect("kla again"); // flap is now LRU
        cache.get_or_compile(&sko).expect("sko evicts flap");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 3);
        cache.get_or_compile(&kla).expect("kla stays");
        assert_eq!(cache.hits(), 2, "klagenfurt must have survived the eviction");
        cache.get_or_compile(&flap).expect("flap recompiles");
        assert_eq!(cache.misses(), 4, "the flap spec must have been evicted");
    }

    // -- facade execution ----------------------------------------------------

    fn tiny_sweep_request() -> ExecRequest {
        let sweep = SweepSpec::from_json(
            r#"{"name": "exec-tiny", "base": "base.json",
                "axes": [{"kind": "override", "path": "$.campaign.sample_interval_s",
                           "values": [2.0, 4.0]}]}"#,
        )
        .expect("parses");
        let base: Value = serde_json::from_str(&flat_spec().to_json()).expect("parses");
        ExecRequest::sweep(sweep, base)
    }

    #[test]
    fn facade_run_matches_run_field_bitwise() {
        let spec = flat_spec();
        let scenario = Scenario::from_spec(&spec).expect("compiles");
        let config = CampaignConfig {
            seed: spec.campaign.seed,
            sample_interval_s: spec.campaign.sample_interval_s,
            passes: spec.campaign.passes,
        };
        let direct = run_field(&scenario, config, ExecBackend::Analytic);
        match execute(&ExecRequest::run(spec)).expect("runs") {
            ExecReport::Run(out) => {
                assert_eq!(field_bits(&direct), field_bits(&out.field));
                assert_eq!(out.report.backend, "analytic");
                assert_eq!(out.report.total_samples, direct.total_samples());
            }
            other => panic!("expected a run report, got {other:?}"),
        }
    }

    #[test]
    fn facade_sweep_matches_sweep_run_bitwise_and_streams_identical_reports() {
        let req = tiny_sweep_request();
        let sweep = build_sweep(&req).expect("builds");
        let direct = sweep.run().expect("runs").report.to_json();

        let exec = Executor::new();
        let mut streamed: Vec<(usize, String)> = Vec::new();
        let report = exec
            .execute_streaming(&req, |r, v| {
                streamed.push((r, serde_json::to_string(v).expect("serialises")));
            })
            .expect("runs");
        let ExecReport::Sweep(run) = &report else { panic!("expected a sweep report") };
        assert_eq!(report.to_json(), direct, "facade and Sweep::run must agree bitwise");

        assert_eq!(
            streamed.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "base plus both variants, in run order"
        );
        let final_reports: Vec<String> = std::iter::once(&run.report.base)
            .chain(&run.report.variants)
            .map(|v| serde_json::to_string(v).expect("serialises"))
            .collect();
        for ((_, streamed_json), final_json) in streamed.iter().zip(&final_reports) {
            assert_eq!(streamed_json, final_json, "streamed bits must equal final bits");
        }
    }

    #[test]
    fn facade_sweep_is_deterministic_across_pool_sizes_and_cache_state() {
        let req = tiny_sweep_request();
        let exec = Executor::new();
        let a = with_thread_count(1, || exec.execute(&req).expect("runs").to_json());
        let b = with_thread_count(4, || exec.execute(&req).expect("runs").to_json());
        let (hits, _, _) = exec.cache_stats();
        assert!(hits > 0, "the second sweep must reuse the cached scenario");
        assert_eq!(a, b);
    }

    #[test]
    fn facade_validate_reports_document_shape() {
        match execute(&ExecRequest::validate_spec(flat_spec())).expect("valid") {
            ExecReport::Valid { kind, name, variants } => {
                assert_eq!((kind, name.as_str(), variants), ("scenario", "klagenfurt", None));
            }
            other => panic!("expected a valid report, got {other:?}"),
        }
        let req = tiny_sweep_request();
        let req = ExecRequest { action: ExecAction::Validate, ..req };
        match execute(&req).expect("valid") {
            ExecReport::Valid { kind, variants, .. } => {
                assert_eq!((kind, variants), ("sweep", Some(2)));
            }
            other => panic!("expected a valid report, got {other:?}"),
        }
    }

    #[test]
    fn facade_run_overrides_apply_before_validation() {
        let mut req = ExecRequest::run(flat_spec());
        req.passes = Some(0);
        let e = execute(&req).expect_err("0 passes is invalid");
        assert!(e.path.contains("passes"), "{}", e.path);
    }
}
