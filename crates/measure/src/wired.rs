//! The wired/static baseline campaign.
//!
//! Section IV-C: "the mean round-trip time latency for mobile nodes
//! surpasses that of wired nodes by a factor of seven", and the
//! introduction cites 7–12 ms from Klagenfurt to the Exoscale cloud.
//! This campaign measures both: the fixed peers ping each other, the
//! university anchor, and the Vienna cloud over their wired access.

use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use sixg_netsim::latency::DelaySampler;
use sixg_netsim::radio::{AccessModel, WiredAccess};
use sixg_netsim::rng::{SimRng, StreamKey};
use sixg_netsim::routing::PathComputer;
use sixg_netsim::stats::Welford;
use sixg_netsim::topology::NodeId;

/// Result of the wired campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WiredStats {
    /// Overall mean RTT, ms.
    pub mean_ms: f64,
    /// Overall sample standard deviation, ms.
    pub std_ms: f64,
    /// Mean RTT to the cloud only (the Exoscale 7–12 ms reference).
    pub cloud_mean_ms: f64,
    /// Mean RTT to the anchor only.
    pub anchor_mean_ms: f64,
    /// Samples collected.
    pub count: u64,
}

/// Wired baseline campaign runner. Requires a scenario with fixed peers
/// and a cloud reference (the Klagenfurt spec provides both).
pub struct WiredCampaign<'a> {
    scenario: &'a Scenario,
    /// Samples per (source, target) pair.
    pub samples_per_pair: usize,
    /// Campaign seed.
    pub seed: u64,
}

impl<'a> WiredCampaign<'a> {
    /// Creates the campaign with a default density of 200 samples/pair.
    pub fn new(scenario: &'a Scenario, seed: u64) -> Self {
        Self { scenario, samples_per_pair: 200, seed }
    }

    /// Runs the campaign. Panics when the scenario spec declares no cloud
    /// reference node.
    pub fn run(&self) -> WiredStats {
        let s = self.scenario;
        let s_cloud = s.cloud.expect("wired baseline needs a cloud reference in the spec");
        let pc = PathComputer::new(&s.topo, &s.as_graph);
        let sampler = DelaySampler::new(&s.topo);
        let access = WiredAccess::default();

        let mut all = Welford::new();
        let mut cloud = Welford::new();
        let mut anchor = Welford::new();

        let mut targets: Vec<NodeId> = vec![s.anchor, s_cloud];
        targets.extend(s.peers.iter().copied());

        for (si, &src) in s.peers.iter().enumerate() {
            for (ti, &dst) in targets.iter().enumerate() {
                if src == dst {
                    continue;
                }
                let Some(path) = pc.route(src, dst) else { continue };
                let key = StreamKey::root(s.seed)
                    .with_label("wired")
                    .with(self.seed)
                    .with(si as u64)
                    .with(ti as u64);
                let mut rng = SimRng::for_stream(key);
                for _ in 0..self.samples_per_pair {
                    let rtt =
                        sampler.rtt_ms(&path.hops, 64, &mut rng) + access.sample_rtt_ms(&mut rng);
                    all.push(rtt);
                    if dst == s_cloud {
                        cloud.push(rtt);
                    } else if dst == s.anchor {
                        anchor.push(rtt);
                    }
                }
            }
        }

        WiredStats {
            mean_ms: all.mean(),
            std_ms: all.sample_std_dev(),
            cloud_mean_ms: cloud.mean(),
            anchor_mean_ms: anchor.mean(),
            count: all.count(),
        }
    }
}

/// The mobile-vs-wired factor of Section IV-C.
pub fn mobile_wired_factor(mobile_grand_mean_ms: f64, wired: &WiredStats) -> f64 {
    mobile_grand_mean_ms / wired.mean_ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, MobileCampaign};
    use crate::klagenfurt::KlagenfurtScenario;

    fn scenario() -> KlagenfurtScenario {
        KlagenfurtScenario::paper(0x6B6C_7531)
    }

    #[test]
    fn wired_mean_is_an_order_of_magnitude_below_mobile() {
        let s = scenario();
        let wired = WiredCampaign::new(&s, 3).run();
        assert!(wired.mean_ms < 15.0, "wired mean {}", wired.mean_ms);
        assert!(wired.mean_ms > 4.0, "wired mean {}", wired.mean_ms);
        assert!(wired.count > 1000);
    }

    #[test]
    fn cloud_reference_in_7_to_12ms_band() {
        // Horvath et al. [3]: Klagenfurt→Exoscale 7–12 ms over wires.
        let s = scenario();
        let wired = WiredCampaign::new(&s, 3).run();
        assert!((7.0..=12.0).contains(&wired.cloud_mean_ms), "cloud mean {}", wired.cloud_mean_ms);
    }

    #[test]
    fn factor_of_seven_reproduced() {
        let s = scenario();
        let field = MobileCampaign::new(&s, CampaignConfig::dense(5)).run();
        let wired = WiredCampaign::new(&s, 5).run();
        let factor = mobile_wired_factor(field.grand_mean_ms(), &wired);
        assert!((6.0..=8.5).contains(&factor), "factor {factor}");
    }

    #[test]
    fn wired_campaign_deterministic() {
        let s = scenario();
        let a = WiredCampaign::new(&s, 9).run();
        let b = WiredCampaign::new(&s, 9).run();
        assert_eq!(a.mean_ms, b.mean_ms);
        assert_eq!(a.std_ms, b.std_ms);
    }

    #[test]
    fn anchor_faster_than_cloud_on_average() {
        // Anchor is reached Klagenfurt→Vienna→Klagenfurt; the cloud adds
        // its ingress pipeline, so anchor pings are slightly faster.
        let s = scenario();
        let w = WiredCampaign::new(&s, 11).run();
        assert!(w.anchor_mean_ms < w.cloud_mean_ms);
    }
}
