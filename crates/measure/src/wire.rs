//! The length-framed wire codec shared by the `sixg-serve` daemon and the
//! [`crate::dispatch`] coordinator.
//!
//! The codec used to live inside the bench crate's serve module; moving it
//! here lets `measure::dispatch` speak the protocol without a dependency
//! cycle (bench depends on measure, never the reverse). The bench crate
//! re-exports every item, so daemon, client and coordinator share one
//! definition of a frame.
//!
//! ## Frame layout
//!
//! Every message in both directions is one length-prefixed frame:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "6GSV"
//!      4     1  kind   (1 = REQUEST, 2 = VARIANT, 3 = REPORT, 4 = ERROR,
//!                       5 = STORE)
//!      5     3  reserved, must be zero
//!      8     4  payload length, u32 little-endian (cap: 64 MiB)
//!     12     n  payload
//! ```
//!
//! `REQUEST`, `VARIANT`, `REPORT` and `ERROR` payloads are UTF-8 JSON —
//! see the daemon docs for the request/response exchange. `STORE` payloads
//! are binary: a [`StoreBundle`] of named checkpoint-store blobs. They
//! flow in both directions of a dispatched shard request
//! (`"stream_store": true`): the coordinator may send one bundle right
//! after the `REQUEST` to seed a reassigned shard's store
//! (`"seed_store": true`), and the worker streams one bundle per store
//! mutation (manifest written, run spilled, cursor committed) so the
//! coordinator always holds enough state to resume the shard elsewhere.
//!
//! ## Failure taxonomy
//!
//! Reading a frame distinguishes *worker death* from *protocol garbage*:
//! a clean EOF between frames is `Ok(None)`, EOF inside a frame is
//! `UnexpectedEof`, and a bad magic / kind / reserved byte / length is
//! `InvalidData`. [`is_transient_io`] encodes the retry policy both the
//! dispatch coordinator and the bench client use: connection-shaped
//! failures are retriable against a reconnect (execution is deterministic
//! and idempotent, so a replay can never change results); `InvalidData`
//! is a broken peer and is never retried.

use crate::spec::SpecError;
use crate::sweep::VariantReport;
use serde::Value;
use std::io::{self, Read, Write};

/// Frame magic: every frame in either direction starts with these bytes.
pub const MAGIC: [u8; 4] = *b"6GSV";

/// Frame header size (magic + kind + reserved + length), bytes.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a frame payload — a mega-sweep report is a few MiB;
/// anything past this is a corrupt length field, not a real request.
pub const MAX_PAYLOAD_LEN: u32 = 64 << 20;

/// Magic of a [`StoreBundle`] (`STORE` frame payload).
pub const BUNDLE_MAGIC: [u8; 4] = *b"6GSB";

/// Frame kind tags (byte 4 of the header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: an [`crate::exec::ExecRequest`] JSON document.
    Request,
    /// Server → client: one streamed per-variant sweep report.
    Variant,
    /// Server → client, terminal: the [`crate::exec::ExecReport`] JSON.
    Report,
    /// Server → client, terminal: `{"code", "path", "message"}`.
    Error,
    /// Either direction of a dispatched shard: a binary [`StoreBundle`]
    /// of checkpoint-store blobs (seed on the way in, streamed store
    /// mutations on the way out).
    Store,
}

impl FrameKind {
    /// The wire tag.
    pub fn as_u8(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Variant => 2,
            FrameKind::Report => 3,
            FrameKind::Error => 4,
            FrameKind::Store => 5,
        }
    }

    /// Parses a wire tag.
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            1 => FrameKind::Request,
            2 => FrameKind::Variant,
            3 => FrameKind::Report,
            4 => FrameKind::Error,
            5 => FrameKind::Store,
            _ => return None,
        })
    }
}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_PAYLOAD_LEN)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame payload too large"))?;
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4] = kind.as_u8();
    header[8..].copy_from_slice(&len.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer shut the
/// connection down between frames); EOF inside a frame, a bad magic, an
/// unknown kind, non-zero reserved bytes, or an oversized length are all
/// `InvalidData` errors — the stream is unrecoverable after any of them.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(FrameKind, Vec<u8>)>> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside a frame header",
            ));
        }
        filled += n;
    }
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if header[..4] != MAGIC {
        return Err(bad("bad frame magic (expected \"6GSV\")"));
    }
    let kind = FrameKind::from_u8(header[4]).ok_or_else(|| bad("unknown frame kind"))?;
    if header[5..8] != [0, 0, 0] {
        return Err(bad("non-zero reserved bytes in frame header"));
    }
    let len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD_LEN {
        return Err(bad("frame payload length exceeds the 64 MiB cap"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((kind, payload)))
}

/// The `ERROR` frame payload for a facade error: stable field order, so
/// identical failures serialise identically.
pub fn error_payload(e: &SpecError) -> Vec<u8> {
    let v = Value::Object(vec![
        ("code".into(), Value::String(e.code.as_str().into())),
        ("path".into(), Value::String(e.path.clone())),
        ("message".into(), Value::String(e.message.clone())),
    ]);
    serde_json::to_string_pretty(&v).expect("error payload serialises").into_bytes()
}

/// The `VARIANT` frame payload for one streamed sweep variant.
pub fn variant_payload(run: usize, report: &VariantReport) -> Vec<u8> {
    let v = Value::Object(vec![
        ("run".into(), Value::U64(run as u64)),
        ("report".into(), serde_json::to_value(report)),
    ]);
    serde_json::to_string_pretty(&v).expect("variant payload serialises").into_bytes()
}

/// True for connection-shaped I/O failures worth a reconnect-and-retry:
/// the peer died, the route flapped, or a deadline fired. `InvalidData`
/// (protocol garbage) is deliberately *not* transient — a peer that frames
/// wrongly will frame wrongly again.
pub fn is_transient_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::NotConnected
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
    )
}

/// True when `name` is safe as a store-blob (or scratch-store) file name:
/// it resolves to a plain file inside the store directory on every
/// platform. First character alphanumeric, the rest `[A-Za-z0-9._-]`,
/// length ≤ 128 — which structurally rules out path separators, `..`,
/// hidden files and empty names.
pub fn is_safe_store_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    name.len() <= 128
        && first.is_ascii_alphanumeric()
        && chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// A `STORE` frame payload: named checkpoint-store blobs, order-preserving.
///
/// ```text
/// offset  size  field
///      0     4  magic "6GSB"
///      4     4  entry count, u32 LE
/// then per entry:
///             4  name length, u32 LE
///             n  name, ASCII (see `is_safe_store_name`)
///             8  blob length, u64 LE
///             m  blob bytes
/// ```
///
/// Entry names are the store's own file names (`manifest.json`,
/// `cursor.blob`, `run_NNNNN.blob`), so seeding a worker is literally
/// "write each entry into the fresh store directory". Decode rejects
/// unsafe names, so a hostile bundle cannot escape the scratch root.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreBundle {
    entries: Vec<(String, Vec<u8>)>,
}

impl StoreBundle {
    /// An empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a named blob. Panics on an unsafe name — callers build
    /// bundles from store file names, which are safe by construction.
    pub fn push(&mut self, name: &str, bytes: impl Into<Vec<u8>>) {
        assert!(is_safe_store_name(name), "unsafe store-bundle entry name {name:?}");
        self.entries.push((name.to_string(), bytes.into()));
    }

    /// The entries, in insertion order.
    pub fn entries(&self) -> &[(String, Vec<u8>)] {
        &self.entries
    }

    /// True when the bundle carries nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialises the bundle into `STORE` frame payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            8 + self.entries.iter().map(|(n, b)| 12 + n.len() + b.len()).sum::<usize>(),
        );
        out.extend_from_slice(&BUNDLE_MAGIC);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, bytes) in &self.entries {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        out
    }

    /// Parses `STORE` frame payload bytes. Truncation, a bad magic, an
    /// unsafe entry name, or trailing garbage are all `InvalidData`.
    pub fn decode(buf: &[u8]) -> io::Result<Self> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let take = |pos: &mut usize, n: usize| -> io::Result<&[u8]> {
            let end = pos.checked_add(n).filter(|&e| e <= buf.len()).ok_or_else(|| {
                bad(format!("truncated store bundle: wanted {n} bytes at offset {pos}"))
            })?;
            let out = &buf[*pos..end];
            *pos = end;
            Ok(out)
        };
        let mut pos = 0usize;
        if take(&mut pos, 4)? != BUNDLE_MAGIC {
            return Err(bad("not a store bundle (bad magic)".into()));
        }
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
        let mut entries = Vec::with_capacity(count.min(1024) as usize);
        for _ in 0..count {
            let name_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
            let name = std::str::from_utf8(take(&mut pos, name_len as usize)?)
                .map_err(|_| bad("store-bundle entry name is not UTF-8".into()))?
                .to_string();
            if !is_safe_store_name(&name) {
                return Err(bad(format!("unsafe store-bundle entry name {name:?}")));
            }
            let blob_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
            let blob = take(&mut pos, blob_len as usize)?.to_vec();
            entries.push((name, blob));
        }
        if pos != buf.len() {
            return Err(bad(format!("{} trailing bytes after the store bundle", buf.len() - pos)));
        }
        Ok(Self { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ErrorCode;

    #[test]
    fn frame_kinds_round_trip() {
        for kind in [
            FrameKind::Request,
            FrameKind::Variant,
            FrameKind::Report,
            FrameKind::Error,
            FrameKind::Store,
        ] {
            assert_eq!(FrameKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(FrameKind::from_u8(0), None);
        assert_eq!(FrameKind::from_u8(6), None);
    }

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"{\"action\":\"validate\"}").unwrap();
        write_frame(&mut buf, FrameKind::Report, b"").unwrap();
        let mut r = &buf[..];
        let (kind, payload) = read_frame(&mut r).unwrap().expect("first frame");
        assert_eq!(kind, FrameKind::Request);
        assert_eq!(payload, b"{\"action\":\"validate\"}");
        let (kind, payload) = read_frame(&mut r).unwrap().expect("second frame");
        assert_eq!(kind, FrameKind::Report);
        assert!(payload.is_empty());
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after the last frame");
    }

    #[test]
    fn corrupt_frames_are_invalid_data() {
        // Bad magic.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        buf[0] = b'!';
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Unknown kind.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        buf[4] = 9;
        assert_eq!(read_frame(&mut &buf[..]).unwrap_err().kind(), io::ErrorKind::InvalidData);

        // Non-zero reserved bytes.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        buf[6] = 1;
        assert_eq!(read_frame(&mut &buf[..]).unwrap_err().kind(), io::ErrorKind::InvalidData);

        // Length past the cap.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, b"x").unwrap();
        buf[8..12].copy_from_slice(&(MAX_PAYLOAD_LEN + 1).to_le_bytes());
        assert_eq!(read_frame(&mut &buf[..]).unwrap_err().kind(), io::ErrorKind::InvalidData);

        // EOF inside the header.
        let err = read_frame(&mut &buf[..7]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn error_payload_carries_the_machine_readable_code() {
        let e = SpecError::coded(ErrorCode::Conflict, "$.checkpoint", "no checkpointed runs");
        let text = String::from_utf8(error_payload(&e)).unwrap();
        let v = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get("code").and_then(Value::as_str), Some("conflict"));
        assert_eq!(v.get("path").and_then(Value::as_str), Some("$.checkpoint"));
        assert_eq!(v.get("message").and_then(Value::as_str), Some("no checkpointed runs"));
    }

    #[test]
    fn store_bundles_round_trip() {
        let mut b = StoreBundle::new();
        b.push("manifest.json", b"{\"x\": 1}".to_vec());
        b.push("run_00003.blob", vec![0u8, 255, 7, 42]);
        b.push("cursor.blob", Vec::new());
        let back = StoreBundle::decode(&b.encode()).expect("decodes");
        assert_eq!(back, b);
        assert_eq!(back.entries().len(), 3);
        assert_eq!(back.entries()[1].0, "run_00003.blob");
        assert_eq!(back.entries()[1].1, vec![0u8, 255, 7, 42]);

        let empty = StoreBundle::new();
        assert!(StoreBundle::decode(&empty.encode()).expect("decodes").is_empty());
    }

    #[test]
    fn hostile_bundles_are_rejected() {
        // Truncation at every prefix of a real bundle.
        let mut b = StoreBundle::new();
        b.push("cursor.blob", vec![1, 2, 3]);
        let bytes = b.encode();
        for keep in 0..bytes.len() {
            assert!(StoreBundle::decode(&bytes[..keep]).is_err(), "keep={keep}");
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(StoreBundle::decode(&long).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(StoreBundle::decode(&bad).is_err());
    }

    #[test]
    fn unsafe_store_names_are_rejected() {
        for bad in
            ["", "..", "../x", "a/b", "a\\b", ".hidden", "-dash-first", &"x".repeat(129), "a b"]
        {
            assert!(!is_safe_store_name(bad), "{bad:?} must be unsafe");
        }
        for good in ["manifest.json", "cursor.blob", "run_00042.blob", "dsp-1f-0-s001", "A1"] {
            assert!(is_safe_store_name(good), "{good:?} must be safe");
        }
        // An unsafe name cannot enter a bundle through decode either.
        let mut raw = Vec::new();
        raw.extend_from_slice(&BUNDLE_MAGIC);
        raw.extend_from_slice(&1u32.to_le_bytes());
        let name = b"../escape";
        raw.extend_from_slice(&(name.len() as u32).to_le_bytes());
        raw.extend_from_slice(name);
        raw.extend_from_slice(&0u64.to_le_bytes());
        let err = StoreBundle::decode(&raw).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
