//! Rayon-parallel campaign execution.
//!
//! Campaigns are embarrassingly parallel across (pass, cell) work items
//! because every item draws from its own derived random stream (see
//! [`sixg_netsim::rng`]). The parallel runner therefore produces results
//! **bitwise identical** to the sequential one — verified by tests — while
//! scaling across cores for the multi-seed sweeps the benchmark harness
//! runs.

use crate::aggregate::CellField;
use crate::campaign::{CampaignConfig, MobileCampaign};
use crate::klagenfurt::KlagenfurtScenario;
use rayon::prelude::*;
use sixg_geo::CellId;

/// Runs the campaign with rayon, sharding at (pass, cell) granularity.
pub fn run_parallel(scenario: &KlagenfurtScenario, config: CampaignConfig) -> CellField {
    let campaign = MobileCampaign::new(scenario, config);
    // Materialise the work list first (traversals are cheap and
    // deterministic).
    let work: Vec<(u32, CellId, f64)> = (0..config.passes)
        .flat_map(|pass| {
            campaign
                .traversal(pass)
                .visits
                .into_iter()
                .map(move |v| (pass, v.cell, v.dwell_s))
                .collect::<Vec<_>>()
        })
        .collect();

    // Sample in parallel (each item has its own random stream), then
    // accumulate in work order so the floating-point operation sequence —
    // and hence every bit of the result — matches the sequential runner.
    let batches: Vec<(CellId, Vec<f64>)> = work
        .par_iter()
        .map(|&(pass, cell, dwell)| (cell, campaign.collect_cell(pass, cell, dwell)))
        .collect();

    let mut field = CellField::new(scenario.grid.clone());
    for (cell, samples) in batches {
        for v in samples {
            field.push(cell, v);
        }
    }
    field
}

/// Result of one seed of a multi-seed sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Campaign seed.
    pub seed: u64,
    /// Grand mean over reported cells, ms.
    pub grand_mean_ms: f64,
    /// Reported mean range (min, max), ms.
    pub mean_range: (f64, f64),
}

/// Runs the campaign for many seeds in parallel (scenario shared).
pub fn seed_sweep(
    scenario: &KlagenfurtScenario,
    base: CampaignConfig,
    seeds: &[u64],
) -> Vec<SweepPoint> {
    seeds
        .par_iter()
        .map(|&seed| {
            let field = MobileCampaign::new(scenario, CampaignConfig { seed, ..base }).run();
            let (min, max) = field.mean_extrema().expect("non-empty campaign");
            SweepPoint {
                seed,
                grand_mean_ms: field.grand_mean_ms(),
                mean_range: (min.mean_ms, max.mean_ms),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> KlagenfurtScenario {
        KlagenfurtScenario::paper(0x6B6C_7531)
    }

    #[test]
    fn parallel_equals_sequential_bitwise() {
        let s = scenario();
        let config = CampaignConfig { passes: 2, ..Default::default() };
        let seq = MobileCampaign::new(&s, config).run();
        let par = run_parallel(&s, config);
        for cell in s.grid.cells() {
            let a = seq.stats(cell);
            let b = par.stats(cell);
            assert_eq!(a.count, b.count, "cell {cell}");
            assert_eq!(a.mean_ms.to_bits(), b.mean_ms.to_bits(), "cell {cell} mean");
            assert_eq!(a.std_ms.to_bits(), b.std_ms.to_bits(), "cell {cell} std");
        }
    }

    #[test]
    fn sweep_produces_stable_grand_means() {
        let s = scenario();
        let points = seed_sweep(&s, CampaignConfig::default(), &[1, 2, 3, 4]);
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!((p.grand_mean_ms - 74.1).abs() < 3.0, "seed {}: {}", p.seed, p.grand_mean_ms);
            assert!(p.mean_range.0 < p.mean_range.1);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let s = scenario();
        let a = seed_sweep(&s, CampaignConfig::default(), &[5, 6]);
        let b = seed_sweep(&s, CampaignConfig::default(), &[5, 6]);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.grand_mean_ms.to_bits(), y.grand_mean_ms.to_bits());
        }
    }
}
