//! Multi-threaded campaign execution on the rayon thread pool.
//!
//! Campaigns are embarrassingly parallel across [`Shard`]s — (pass, cell)
//! work items — because every shard draws from its own derived random
//! stream (see [`sixg_netsim::rng`]). The runner samples shards on the
//! pool's worker threads (`RAYON_NUM_THREADS` controls how many), then
//! merges the per-shard sample batches into a [`CellField`] **in work-list
//! order**, so the floating-point accumulation sequence is exactly the
//! sequential runner's and the result is bitwise identical for every pool
//! size — asserted by the `parallel_equals_sequential_bitwise` thread-count
//! matrix test.

use crate::aggregate::CellField;
use crate::campaign::{CampaignConfig, MobileCampaign, Shard};
use crate::scenario::Scenario;
use crate::spec::ExecBackend;
use rayon::prelude::*;

/// Runs the campaign on the thread pool, sharding at (pass, cell)
/// granularity and merging batches in deterministic work-list order.
/// The analytic half of the [`crate::exec`] dispatch.
pub(crate) fn analytic_field(scenario: &Scenario, config: CampaignConfig) -> CellField {
    let campaign = MobileCampaign::new(scenario, config);
    run_shards(scenario, &campaign.shards(), |shard, buf| campaign.collect_shard_into(shard, buf))
}

#[doc(hidden)]
#[deprecated(
    note = "superseded by the ExecRequest facade: use `exec::run_field(scenario, config, \
            ExecBackend::Analytic)` (or `exec::execute` on a spec); this shim forwards to \
            the same analytic runner"
)]
pub fn run_parallel(scenario: &Scenario, config: CampaignConfig) -> CellField {
    analytic_field(scenario, config)
}

/// Work items sampled per streaming round before folding — the memory
/// bound of [`run_items_streaming`]: at most this many sample buffers are
/// alive at once, however long the work list is. Large enough that the
/// pool stays saturated between the (cheap) fold barriers.
pub(crate) const STREAM_CHUNK: usize = 1024;

/// The shared streaming skeleton every parallel runner builds on: sample
/// each work item on the pool via `collect` (each item owns its random
/// stream, so execution order is free), in rounds of at most
/// [`STREAM_CHUNK`] items whose buffers are reused from round to round,
/// then fold every batch back **in work-list order** so the floating-point
/// accumulation sequence — and hence every bit of the result — matches a
/// sequential pass over the same list. Campaign runners instantiate `T =`
/// [`Shard`]; the sweep runner instantiates `T = (variant, Shard)` and
/// keeps whole campaign matrices inside the same fixed memory bound.
pub(crate) fn run_items_streaming<T: Copy + Send + Sync>(
    items: &[T],
    collect: impl Fn(T, &mut Vec<f64>) + Sync,
    mut fold: impl FnMut(T, &[f64]),
) {
    let mut batches: Vec<(Option<T>, Vec<f64>)> = Vec::new();
    for chunk in items.chunks(STREAM_CHUNK) {
        if batches.len() < chunk.len() {
            batches.resize_with(chunk.len(), || (None, Vec::new()));
        }
        let round = &mut batches[..chunk.len()];
        for (slot, &item) in round.iter_mut().zip(chunk) {
            slot.0 = Some(item);
        }
        round.par_iter_mut().for_each(|(item, buf)| collect(item.expect("item set above"), buf));
        for (item, buf) in round.iter() {
            fold(item.expect("item set above"), buf);
        }
    }
}

/// The shard-level parallel skeleton both execution backends use:
/// [`run_items_streaming`] over the campaign's own shard list, folding into
/// one [`CellField`].
pub(crate) fn run_shards(
    scenario: &Scenario,
    shards: &[Shard],
    collect: impl Fn(Shard, &mut Vec<f64>) + Sync,
) -> CellField {
    let mut field = CellField::new(scenario.grid.clone());
    run_items_streaming(shards, collect, |shard, buf| {
        for &v in buf {
            field.push(shard.cell, v);
        }
    });
    field
}

/// The sequential counterpart of [`run_shards`], shared by both backends'
/// `run()` methods: one reusable sample buffer, shards visited in
/// work-list order, samples pushed in cadence order — exactly the
/// accumulation sequence [`run_shards`] reproduces, so the pair stays
/// bitwise interchangeable by construction.
pub(crate) fn run_shards_sequential(
    scenario: &Scenario,
    shards: &[Shard],
    mut collect: impl FnMut(Shard, &mut Vec<f64>),
) -> CellField {
    let mut field = CellField::new(scenario.grid.clone());
    let mut buf = Vec::new();
    for &shard in shards {
        collect(shard, &mut buf);
        for &v in &buf {
            field.push(shard.cell, v);
        }
    }
    field
}

/// Runs the campaign with the chosen execution backend — both run on the
/// thread pool over the same shard list and both are bitwise-deterministic
/// at every pool size; they differ only in how a shard's samples are
/// produced (closed-form draws vs packet-level event simulation).
pub(crate) fn dispatch_backend(
    scenario: &Scenario,
    config: CampaignConfig,
    backend: ExecBackend,
) -> CellField {
    match backend {
        ExecBackend::Analytic => analytic_field(scenario, config),
        ExecBackend::Event if scenario.spec.faults.is_empty() => {
            crate::event_backend::event_field(scenario, config)
        }
        // A fault schedule needs the live control plane: same shard list
        // and stream keys, but routes come from the BGP speakers' RIBs.
        ExecBackend::Event => crate::faults::faulted_field(scenario, config),
    }
}

#[doc(hidden)]
#[deprecated(
    note = "superseded by the ExecRequest facade: use `exec::run_field(scenario, config, \
            backend)` (or `exec::execute` on a spec); this shim forwards to the same dispatch"
)]
pub fn run_backend(scenario: &Scenario, config: CampaignConfig, backend: ExecBackend) -> CellField {
    dispatch_backend(scenario, config, backend)
}

/// Result of one seed of a multi-seed sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Campaign seed.
    pub seed: u64,
    /// Grand mean over reported cells, ms.
    pub grand_mean_ms: f64,
    /// Reported mean range (min, max), ms.
    pub mean_range: (f64, f64),
}

/// Runs the campaign for many seeds on the thread pool (scenario shared;
/// results in input seed order).
pub fn seed_sweep(scenario: &Scenario, base: CampaignConfig, seeds: &[u64]) -> Vec<SweepPoint> {
    seeds
        .par_iter()
        .map(|&seed| {
            let field = MobileCampaign::new(scenario, CampaignConfig { seed, ..base }).run();
            let (min, max) = field.mean_extrema().expect("non-empty campaign");
            SweepPoint {
                seed,
                grand_mean_ms: field.grand_mean_ms(),
                mean_range: (min.mean_ms, max.mean_ms),
            }
        })
        .collect()
}

pub use rayon::with_thread_count;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::klagenfurt::KlagenfurtScenario;

    fn scenario() -> KlagenfurtScenario {
        KlagenfurtScenario::paper(0x6B6C_7531)
    }

    fn assert_fields_bitwise_equal(s: &Scenario, a: &CellField, b: &CellField, context: &str) {
        for cell in s.grid.cells() {
            let (x, y) = (a.stats(cell), b.stats(cell));
            assert_eq!(x.count, y.count, "{context}: cell {cell} count");
            assert_eq!(x.mean_ms.to_bits(), y.mean_ms.to_bits(), "{context}: cell {cell} mean");
            assert_eq!(x.std_ms.to_bits(), y.std_ms.to_bits(), "{context}: cell {cell} std");
        }
    }

    /// The determinism contract, as a thread-count matrix: for every pool
    /// size and several seeds, the parallel runner must reproduce the
    /// sequential runner bit for bit.
    #[test]
    fn parallel_equals_sequential_bitwise() {
        let s = scenario();
        for &seed in &[1u64, 7, 0xBEEF] {
            let config = CampaignConfig { seed, passes: 2, ..Default::default() };
            let seq = MobileCampaign::new(&s, config).run();
            for &threads in &[1usize, 2, 4, 8] {
                let par = with_thread_count(threads, || analytic_field(&s, config));
                assert_fields_bitwise_equal(
                    &s,
                    &seq,
                    &par,
                    &format!("seed {seed}, {threads} threads"),
                );
            }
        }
    }

    #[test]
    fn sweep_produces_stable_grand_means() {
        let s = scenario();
        let points = seed_sweep(&s, CampaignConfig::default(), &[1, 2, 3, 4]);
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!((p.grand_mean_ms - 74.1).abs() < 3.0, "seed {}: {}", p.seed, p.grand_mean_ms);
            assert!(p.mean_range.0 < p.mean_range.1);
        }
    }

    #[test]
    fn sweep_is_deterministic_across_pool_sizes() {
        let s = scenario();
        let a = with_thread_count(1, || seed_sweep(&s, CampaignConfig::default(), &[5, 6]));
        let b = with_thread_count(4, || seed_sweep(&s, CampaignConfig::default(), &[5, 6]));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed, "sweep must keep input seed order");
            assert_eq!(x.grand_mean_ms.to_bits(), y.grand_mean_ms.to_bits());
            assert_eq!(x.mean_range.0.to_bits(), y.mean_range.0.to_bits());
            assert_eq!(x.mean_range.1.to_bits(), y.mean_range.1.to_bits());
        }
    }
}
