//! # sixg-measure — RIPE-Atlas-style measurement campaigns
//!
//! This crate reproduces Section IV of the paper: a mobile 5G node
//! traverses a 1 km grid over Klagenfurt, measuring round-trip latency to
//! a university anchor and eight fixed peer nodes, aggregated per cell.
//!
//! * [`klagenfurt`] — the full measured infrastructure as a scenario:
//!   topology (operator, transit chain via Vienna/Prague/Bucharest, local
//!   ISP, campus), AS business relationships, pinned Table-I naming, the
//!   grid, the density raster, and the per-cell radio calibration;
//! * [`campaign`] — the mobile measurement campaign (Figures 2–3) and the
//!   Table-I traceroute;
//! * [`aggregate`] — per-cell statistics with the paper's "< 10 samples ⇒
//!   0.0" marker rule;
//! * [`wired`] — the wired/static baseline (the "factor of seven"
//!   comparison and the Exoscale 7–12 ms reference);
//! * [`report`] — ASCII heatmaps (Figures 2–3 as tables), CSV and JSON
//!   export;
//! * [`parallel`] — multi-threaded execution across (pass, cell) shards and
//!   sweep seeds on the rayon pool, bitwise-identical to sequential runs
//!   for every pool size;
//! * [`exec`] — the unified execution facade: one typed [`exec::ExecRequest`]
//!   validated up front, one [`exec::execute`] entry point dispatching to
//!   the analytic / event / faulted / checkpointed runners, plus the
//!   compiled-[`Scenario`] cache the `sixg-serve` daemon keeps hot;
//! * [`event_backend`] — the packet-level discrete-event execution
//!   backend: the same shard list and stream-keying discipline, but every
//!   sample is a probe packet through per-hop FIFO queues (congestion is
//!   emergent, not sampled), cross-validated against the analytic path;
//! * [`faults`] — fault-bearing campaigns: the spec's link fail/recover
//!   schedule applied mid-campaign over the message-level BGP speakers of
//!   [`sixg_netsim::routing::dynamic`], so probes launched during a flap
//!   measure real convergence transients (detour shifts, blackholes);
//! * [`hvt`] — hierarchical topology-preserving super-cell aggregation:
//!   mega-grid fields compress into a two-level tile/super-cell hierarchy
//!   (quantized by mean band, exceedance and position) so continental-scale
//!   run reports stay navigable instead of enumerating 10⁶ cells;
//! * [`validate`] — field-level agreement metrics (RMSE, max deviation,
//!   extrema rank agreement) between a campaign and its targets;
//! * [`sweep`] — the declarative parameter-sweep subsystem: a
//!   [`sweep::SweepSpec`] (base spec + typed axes) whose cross product
//!   compiles into an order-deterministic campaign matrix, executed as one
//!   interleaved work list with streaming per-variant aggregation;
//! * [`store`] — checkpointed sweep execution: completed per-variant
//!   accumulators spill to a content-addressed on-disk store with a
//!   `(run, pass, cell)` resume cursor, so killed mega-sweeps (beyond the
//!   in-memory variant cap) resume bitwise-identically, and disjoint
//!   shard stores merge back into the exact single-machine report;
//! * [`wire`] — the length-framed wire codec shared by the `sixg-serve`
//!   daemon and the dispatch coordinator: frame kinds (REQUEST / VARIANT /
//!   REPORT / ERROR / STORE), the named-blob [`wire::StoreBundle`]
//!   container that carries checkpoint-store state over STORE frames, and
//!   the transient-vs-fatal I/O error taxonomy retries are built on;
//! * [`dispatch`] — the fault-tolerant distributed sweep coordinator: the
//!   run range splits into more shards than workers, each shard runs as a
//!   checkpointed request on a `sixg-serve` worker that streams its store
//!   state back over STORE frames, and a dead worker's shard is reseeded
//!   onto a live one from the last streamed cursor — the folded report is
//!   bitwise-identical to a single-machine sweep;
//! * [`spec`] — the declarative scenario subsystem: a serde-backed
//!   [`spec::ScenarioSpec`] (JSON, loadable from a file) describing a
//!   campaign end to end, validated with path-anchored errors;
//! * [`scenario`] — the generic [`scenario::Scenario`] every spec compiles
//!   into, and the dynamic [`scenario::TargetField`];
//! * [`klagenfurt`] — the measured site as a thin wrapper over
//!   `specs/klagenfurt.json` (bitwise pinned by the golden suite);
//! * [`skopje`] — a second, *projected* scenario at the partner site
//!   (the paper's future-work promise to expand the geographic scope),
//!   wrapper over `specs/skopje.json`;
//! * [`megacity`] — a dense 10 × 10 synthetic sector with a local-peering
//!   topology variant, wrapper over `specs/megacity.json`.

pub mod aggregate;
pub mod campaign;
pub mod continental;
pub mod dispatch;
pub mod event_backend;
pub mod exec;
pub mod faults;
pub mod hvt;
pub mod klagenfurt;
pub mod megacity;
pub mod parallel;
pub mod report;
pub mod scenario;
pub mod skopje;
pub mod spec;
pub mod store;
pub mod sweep;
pub mod validate;
pub mod wire;
pub mod wired;

pub use aggregate::{CellField, CellStats};
pub use campaign::{CampaignConfig, MobileCampaign};
pub use dispatch::{
    dispatch_sweep, run_streamed_shard, DispatchConfig, DispatchError, DispatchRun, DispatchStats,
};
pub use event_backend::EventCampaign;
pub use exec::{
    execute, run_field, scenario_content_hash, ExecAction, ExecReport, ExecRequest, Executor,
    RunOutput, RunReport, ScenarioCache, ShardSel,
};
pub use faults::FaultCampaign;
pub use hvt::{HvtConfig, HvtReport};
pub use klagenfurt::KlagenfurtScenario;
pub use scenario::{Scenario, TargetField};
pub use spec::{ErrorCode, ExecBackend, ScenarioSpec, SpecError};
pub use store::{
    merge_stores, run_checkpointed, run_checkpointed_observed, shard_run_range, sweep_content_hash,
    CheckpointConfig, CheckpointError, CheckpointOutcome, CheckpointStore, StoreError, StoreEvent,
    StoreMeta,
};
pub use sweep::{Sweep, SweepReport, SweepRun, SweepSpec};
pub use wired::WiredCampaign;
