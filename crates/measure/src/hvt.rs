//! Hierarchical topology-preserving super-cell aggregation (HVT-style).
//!
//! A mega-grid campaign produces a [`CellField`] with up to
//! [`crate::spec::MAX_GRID_CELLS`] cells — far too many to enumerate in a
//! wire report or eyeball in a table. This module compresses such a field
//! into a **two-level hierarchy** the way hierarchical vector quantization
//! builds topology-preserving maps: compress the rows under a quantization
//! objective, keep the spatial arrangement navigable.
//!
//! * **Level 1 — tiles.** The grid is partitioned into square tiles of
//!   [`HvtConfig::tile_cells`] cells per side, kept in row-major order.
//!   Tiles are pure geometry, so the level-1 layer preserves the grid's
//!   topology exactly: neighbouring tiles hold neighbouring cells.
//! * **Level 2 — super-cells.** Within each tile, reported cells are
//!   quantized by the feature triple *(mean, exceedance, position)*: the
//!   cell's mean RTL is banded over the field-wide reported range into
//!   [`HvtConfig::mean_bands`] equal-width bands, crossed with whether the
//!   mean exceeds the latency requirement. Each occupied *(band,
//!   exceedance)* bucket becomes one [`SuperCell`] carrying the member
//!   count, aggregate statistics, the row-major-first member as its
//!   anchor, and the members' bounding box (the positional component —
//!   a super-cell never spans beyond its tile, so position survives
//!   quantization).
//!
//! The construction is a pure fold over the field in row-major order —
//! no RNG, no iteration-order sensitivity — so the report is bitwise
//! deterministic and identical across pool sizes, exactly like the field
//! it summarises.

use crate::aggregate::{CellField, CellStats};
use serde::Serialize;
use sixg_geo::{CellId, GridSpec};

/// Default number of equal-width mean bands per tile.
pub const DEFAULT_MEAN_BANDS: u32 = 4;

/// Default tiling target: tiles per axis along the grid's longest side.
pub const DEFAULT_TILES_PER_AXIS: u32 = 16;

/// Parameters of the super-cell construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HvtConfig {
    /// Cells per tile side (level-1 partition pitch).
    pub tile_cells: u32,
    /// Equal-width mean bands over the field-wide reported range.
    pub mean_bands: u32,
    /// Latency requirement the exceedance component quantizes against, ms.
    pub requirement_ms: f64,
}

impl HvtConfig {
    /// A configuration tiling `grid` into about
    /// [`DEFAULT_TILES_PER_AXIS`] tiles along its longest side, with
    /// [`DEFAULT_MEAN_BANDS`] mean bands.
    pub fn for_grid(grid: &GridSpec, requirement_ms: f64) -> Self {
        let longest = grid.cols.max(grid.rows);
        Self {
            tile_cells: longest.div_ceil(DEFAULT_TILES_PER_AXIS).max(1),
            mean_bands: DEFAULT_MEAN_BANDS,
            requirement_ms,
        }
    }
}

/// One level-2 quantization bucket: the reported cells of a tile sharing a
/// mean band and an exceedance verdict.
#[derive(Debug, Clone, Serialize)]
pub struct SuperCell {
    /// Mean band index (`0..mean_bands`, low to high).
    pub band: u32,
    /// Whether member means exceed the requirement.
    pub exceeds: bool,
    /// Member cell count.
    pub cells: u64,
    /// Total samples across members.
    pub samples: u64,
    /// Unweighted mean of member cell means, ms.
    pub mean_ms: f64,
    /// Minimum member mean, ms.
    pub mean_min_ms: f64,
    /// Maximum member mean, ms.
    pub mean_max_ms: f64,
    /// Unweighted mean of member cell σ, ms.
    pub std_ms: f64,
    /// Label of the first member in row-major order.
    pub anchor: String,
    /// Minimum member column (bounding box).
    pub col_min: u32,
    /// Maximum member column.
    pub col_max: u32,
    /// Minimum member row.
    pub row_min: u32,
    /// Maximum member row.
    pub row_max: u32,
}

/// One level-1 tile: a square patch of the grid with its super-cells.
#[derive(Debug, Clone, Serialize)]
pub struct Tile {
    /// Tile column index (level-1 coordinates).
    pub tile_col: u32,
    /// Tile row index.
    pub tile_row: u32,
    /// Label of the tile's top-left grid cell.
    pub origin: String,
    /// Reported (unmasked) cells in the tile.
    pub reported_cells: u64,
    /// Masked cells in the tile.
    pub masked_cells: u64,
    /// Unweighted mean over the tile's reported cells, ms (0.0 when none).
    pub mean_ms: f64,
    /// The tile's occupied quantization buckets, ordered by
    /// `(band, exceeds)`.
    pub super_cells: Vec<SuperCell>,
}

/// The two-level hierarchical summary of a [`CellField`].
#[derive(Debug, Clone, Serialize)]
pub struct HvtReport {
    /// Cells per tile side used for the level-1 partition.
    pub tile_cells: u32,
    /// Mean bands used for the level-2 quantization.
    pub mean_bands: u32,
    /// Requirement the exceedance component used, ms.
    pub requirement_ms: f64,
    /// Low edge of the band range (field-wide reported mean minimum), ms.
    pub band_lo_ms: f64,
    /// High edge of the band range (field-wide reported mean maximum), ms.
    pub band_hi_ms: f64,
    /// Tile columns.
    pub tile_cols: u32,
    /// Tile rows.
    pub tile_rows: u32,
    /// Reported cells field-wide.
    pub reported_cells: u64,
    /// Masked cells field-wide.
    pub masked_cells: u64,
    /// All tiles, row-major (fully masked tiles included, so the level-1
    /// layer always covers the whole grid).
    pub tiles: Vec<Tile>,
}

impl HvtReport {
    /// Serialises to pretty JSON (deterministic, like the construction).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("hvt report serialises")
    }
}

/// Per-bucket running aggregate during the fold.
struct SuperAcc {
    cells: u64,
    samples: u64,
    mean_sum: f64,
    mean_min: f64,
    mean_max: f64,
    std_sum: f64,
    anchor: CellId,
    col_min: u32,
    col_max: u32,
    row_min: u32,
    row_max: u32,
}

impl SuperAcc {
    fn open(s: &CellStats) -> Self {
        Self {
            cells: 1,
            samples: s.count,
            mean_sum: s.mean_ms,
            mean_min: s.mean_ms,
            mean_max: s.mean_ms,
            std_sum: s.std_ms,
            anchor: s.cell,
            col_min: s.cell.col,
            col_max: s.cell.col,
            row_min: s.cell.row,
            row_max: s.cell.row,
        }
    }

    fn fold(&mut self, s: &CellStats) {
        self.cells += 1;
        self.samples += s.count;
        self.mean_sum += s.mean_ms;
        self.mean_min = self.mean_min.min(s.mean_ms);
        self.mean_max = self.mean_max.max(s.mean_ms);
        self.std_sum += s.std_ms;
        self.col_min = self.col_min.min(s.cell.col);
        self.col_max = self.col_max.max(s.cell.col);
        self.row_min = self.row_min.min(s.cell.row);
        self.row_max = self.row_max.max(s.cell.row);
    }
}

struct TileAcc {
    reported: u64,
    masked: u64,
    mean_sum: f64,
    buckets: Vec<Option<SuperAcc>>,
}

/// Builds the two-level super-cell hierarchy of `field`.
pub fn build(field: &CellField, cfg: &HvtConfig) -> HvtReport {
    assert!(cfg.tile_cells >= 1, "tile side must be at least one cell");
    assert!(cfg.mean_bands >= 1, "need at least one mean band");
    let grid = field.grid();
    let tile_cols = grid.cols.div_ceil(cfg.tile_cells);
    let tile_rows = grid.rows.div_ceil(cfg.tile_cells);

    // Pass 1: the field-wide reported mean range that anchors the bands.
    // Banding against the global range (not per tile) keeps band indices
    // comparable across tiles — band 3 means "hot" everywhere.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut reported_cells = 0u64;
    let mut masked_cells = 0u64;
    for cell in grid.cells() {
        let s = field.stats(cell);
        if s.is_masked() {
            masked_cells += 1;
        } else {
            reported_cells += 1;
            lo = lo.min(s.mean_ms);
            hi = hi.max(s.mean_ms);
        }
    }
    if reported_cells == 0 {
        lo = 0.0;
        hi = 0.0;
    }

    let band_of = |mean: f64| -> u32 {
        if hi <= lo {
            return 0;
        }
        let raw = ((mean - lo) / (hi - lo) * f64::from(cfg.mean_bands)) as u32;
        raw.min(cfg.mean_bands - 1)
    };

    // Pass 2: fold every cell into its tile's (band, exceedance) bucket.
    // Row-major cell order makes the first member of each bucket — the
    // anchor — deterministic.
    let bucket_count = cfg.mean_bands as usize * 2;
    let mut tiles: Vec<TileAcc> = (0..tile_cols as usize * tile_rows as usize)
        .map(|_| TileAcc {
            reported: 0,
            masked: 0,
            mean_sum: 0.0,
            buckets: (0..bucket_count).map(|_| None).collect(),
        })
        .collect();
    for cell in grid.cells() {
        let t = (cell.row / cfg.tile_cells) as usize * tile_cols as usize
            + (cell.col / cfg.tile_cells) as usize;
        let s = field.stats(cell);
        if s.is_masked() {
            tiles[t].masked += 1;
            continue;
        }
        tiles[t].reported += 1;
        tiles[t].mean_sum += s.mean_ms;
        let exceeds = s.mean_ms > cfg.requirement_ms;
        let b = band_of(s.mean_ms) as usize * 2 + usize::from(exceeds);
        match &mut tiles[t].buckets[b] {
            Some(acc) => acc.fold(&s),
            slot => *slot = Some(SuperAcc::open(&s)),
        }
    }

    let tiles = tiles
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            let tile_col = (i % tile_cols as usize) as u32;
            let tile_row = (i / tile_cols as usize) as u32;
            Tile {
                tile_col,
                tile_row,
                origin: CellId::new(tile_col * cfg.tile_cells, tile_row * cfg.tile_cells).label(),
                reported_cells: t.reported,
                masked_cells: t.masked,
                mean_ms: if t.reported == 0 { 0.0 } else { t.mean_sum / t.reported as f64 },
                super_cells: t
                    .buckets
                    .into_iter()
                    .enumerate()
                    .filter_map(|(b, acc)| {
                        let acc = acc?;
                        Some(SuperCell {
                            band: (b / 2) as u32,
                            exceeds: b % 2 == 1,
                            cells: acc.cells,
                            samples: acc.samples,
                            mean_ms: acc.mean_sum / acc.cells as f64,
                            mean_min_ms: acc.mean_min,
                            mean_max_ms: acc.mean_max,
                            std_ms: acc.std_sum / acc.cells as f64,
                            anchor: acc.anchor.label(),
                            col_min: acc.col_min,
                            col_max: acc.col_max,
                            row_min: acc.row_min,
                            row_max: acc.row_max,
                        })
                    })
                    .collect(),
            }
        })
        .collect();

    HvtReport {
        tile_cells: cfg.tile_cells,
        mean_bands: cfg.mean_bands,
        requirement_ms: cfg.requirement_ms,
        band_lo_ms: lo,
        band_hi_ms: hi,
        tile_cols,
        tile_rows,
        reported_cells,
        masked_cells,
        tiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_geo::GeoPoint;

    /// A 20×20 field with a smooth diagonal gradient (plus one hot cell),
    /// cells below row 10 left masked.
    fn gradient_field() -> CellField {
        let grid = GridSpec::new(GeoPoint::new(46.0, 14.0), 20, 20, 1.0);
        let mut f = CellField::new(grid);
        for r in 10..20u32 {
            for c in 0..20u32 {
                let cell = CellId::new(c, r);
                let mean = 40.0 + f64::from(c + r);
                let n = if cell == CellId::new(19, 19) { 12 } else { 10 };
                for _ in 0..n {
                    f.push(cell, mean);
                }
            }
        }
        f
    }

    fn cfg() -> HvtConfig {
        HvtConfig { tile_cells: 5, mean_bands: 4, requirement_ms: 60.0 }
    }

    #[test]
    fn hierarchy_covers_every_cell_exactly_once() {
        let f = gradient_field();
        let h = build(&f, &cfg());
        assert_eq!((h.tile_cols, h.tile_rows), (4, 4));
        assert_eq!(h.tiles.len(), 16);
        assert_eq!(h.reported_cells, 200);
        assert_eq!(h.masked_cells, 200);
        let cells: u64 = h.tiles.iter().flat_map(|t| &t.super_cells).map(|s| s.cells).sum();
        assert_eq!(cells, h.reported_cells, "every reported cell lands in one super-cell");
        let masked: u64 = h.tiles.iter().map(|t| t.masked_cells).sum();
        assert_eq!(masked, h.masked_cells);
        let samples: u64 = h.tiles.iter().flat_map(|t| &t.super_cells).map(|s| s.samples).sum();
        assert_eq!(samples, f.total_samples());
    }

    #[test]
    fn super_cells_stay_inside_their_tile() {
        let h = build(&gradient_field(), &cfg());
        for t in &h.tiles {
            let (c0, r0) = (t.tile_col * h.tile_cells, t.tile_row * h.tile_cells);
            for s in &t.super_cells {
                assert!(s.col_min >= c0 && s.col_max < c0 + h.tile_cells, "{s:?}");
                assert!(s.row_min >= r0 && s.row_max < r0 + h.tile_cells, "{s:?}");
                assert!(s.mean_min_ms <= s.mean_ms && s.mean_ms <= s.mean_max_ms);
            }
        }
    }

    #[test]
    fn banding_orders_super_cells_by_mean() {
        let h = build(&gradient_field(), &cfg());
        assert!(h.band_lo_ms < h.band_hi_ms);
        for t in &h.tiles {
            for w in t.super_cells.windows(2) {
                assert!(
                    (w[0].band, w[0].exceeds) < (w[1].band, w[1].exceeds),
                    "buckets must come out in (band, exceedance) order"
                );
            }
            for s in &t.super_cells {
                if s.band > 0 {
                    assert!(s.mean_min_ms > h.band_lo_ms);
                }
            }
        }
    }

    #[test]
    fn exceedance_splits_buckets_at_the_requirement() {
        let h = build(&gradient_field(), &cfg());
        for t in &h.tiles {
            for s in &t.super_cells {
                if s.exceeds {
                    assert!(s.mean_min_ms > h.requirement_ms, "{s:?}");
                } else {
                    assert!(s.mean_max_ms <= h.requirement_ms, "{s:?}");
                }
            }
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let a = build(&gradient_field(), &cfg()).to_json();
        let b = build(&gradient_field(), &cfg()).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_field_yields_masked_tiles() {
        let grid = GridSpec::new(GeoPoint::new(46.0, 14.0), 8, 8, 1.0);
        let h = build(
            &CellField::new(grid),
            &HvtConfig { tile_cells: 4, mean_bands: 2, requirement_ms: 50.0 },
        );
        assert_eq!(h.reported_cells, 0);
        assert_eq!((h.band_lo_ms, h.band_hi_ms), (0.0, 0.0));
        assert!(h.tiles.iter().all(|t| t.super_cells.is_empty() && t.mean_ms == 0.0));
    }

    #[test]
    fn for_grid_scales_tile_pitch_to_the_longest_side() {
        let small = GridSpec::new(GeoPoint::new(46.0, 14.0), 6, 7, 1.0);
        assert_eq!(HvtConfig::for_grid(&small, 50.0).tile_cells, 1);
        let wide = GridSpec::new(GeoPoint::new(46.0, 14.0), 1000, 1000, 1.0);
        let cfg = HvtConfig::for_grid(&wide, 50.0);
        assert_eq!(cfg.tile_cells, 63);
        assert_eq!(1000u32.div_ceil(cfg.tile_cells), 16);
    }
}
