//! Checkpointed sweep execution: a content-addressed on-disk store that
//! makes sweeps resumable, shardable and effectively unbounded.
//!
//! [`Sweep::run`](crate::sweep::Sweep::run) holds every per-variant accumulator in memory and caps
//! the matrix at [`crate::sweep::MAX_VARIANTS`]; a killed run loses
//! everything. This module lifts both limits for `sixg-cli sweep
//! --checkpoint DIR`:
//!
//! * **Store layout.** One directory per (sweep, shard): `manifest.json`
//!   (store version, the sweep's content hash, shard geometry),
//!   `run_NNNNN.blob` — the completed per-run [`CellField`] accumulators,
//!   spilled as raw Welford bits the moment a run's last work item folds —
//!   and `cursor.blob`, the `(run, pass, cell)` resume point plus the
//!   in-progress run's partial accumulator state. Every blob carries a
//!   versioned header, the sweep's content hash (FNV-1a 64 over the sweep
//!   spec and base spec JSON) and a trailing checksum; every write is
//!   tmp-file + fsync + rename, so a kill leaves either the old record or
//!   the new one, never a torn file.
//!
//! * **Why resume is bitwise.** The sweep's global work list is run-major
//!   (see [`crate::sweep`]): folding items `0..k` then — after a crash —
//!   items `k..n` replays the exact floating-point accumulation sequence
//!   of one uninterrupted pass, because [`Welford::raw_parts`](sixg_netsim::stats::Welford::raw_parts) round-trips
//!   the accumulator state bit for bit and sample *collection* is a pure
//!   function of each item. A checkpoint boundary therefore commutes with
//!   the fold: kill anywhere, resume, and the report is indistinguishable
//!   from a run that never died, at every thread-pool size.
//!
//! * **Sharding and merge.** `--shard i/N` gives shard `i` the contiguous
//!   run range `[total·i/N, total·(i+1)/N)`; disjoint run ranges mean
//!   disjoint accumulator support, which is the regime where
//!   [`CellField::merge`] is a bitwise copy (see the merge contract in
//!   [`crate::aggregate`]). [`merge_stores`] therefore reassembles the
//!   exact single-machine [`SweepReport`](crate::sweep::SweepReport) from shard stores produced on
//!   different machines.

use crate::aggregate::CellField;
use crate::parallel::run_items_streaming;
use crate::spec::SpecError;
use crate::sweep::{Sweep, SweepRun};
use serde::Value;
use sixg_geo::GridSpec;
use sixg_netsim::stats::Welford;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// On-disk format version; bump on any layout change.
pub const STORE_VERSION: u32 = 1;

/// Default number of work items folded between cursor checkpoints.
pub const CHECKPOINT_INTERVAL: usize = 1024;

const MAGIC: &[u8; 8] = b"SIXGSWP\0";
const KIND_RUN: u32 = 1;
const KIND_CURSOR: u32 = 2;
/// magic + version + kind + spec hash.
const HEADER_LEN: usize = 8 + 4 + 4 + 8;

/// File name of the store's identity card.
pub const MANIFEST_FILE: &str = "manifest.json";

/// File name of the resume-cursor blob.
pub const CURSOR_FILE: &str = "cursor.blob";

/// File name of run `run`'s spilled-accumulator blob.
pub fn run_blob_name(run: u32) -> String {
    format!("run_{run:05}.blob")
}

// ---------------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------------

/// A store-level failure, anchored at the file (or directory) it concerns.
#[derive(Debug, Clone)]
pub struct StoreError {
    /// The path the error is about.
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl StoreError {
    fn new(path: impl AsRef<Path>, message: impl Into<String>) -> Self {
        Self { path: path.as_ref().display().to_string(), message: message.into() }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

impl std::error::Error for StoreError {}

/// A checkpointed-execution failure: either the sweep itself is invalid,
/// or the store is.
#[derive(Debug)]
pub enum CheckpointError {
    /// Sweep/spec-level failure.
    Spec(SpecError),
    /// Store-level failure.
    Store(StoreError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Spec(e) => write!(f, "{e}"),
            CheckpointError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<SpecError> for CheckpointError {
    fn from(e: SpecError) -> Self {
        CheckpointError::Spec(e)
    }
}

impl From<StoreError> for CheckpointError {
    fn from(e: StoreError) -> Self {
        CheckpointError::Store(e)
    }
}

// ---------------------------------------------------------------------------
// Content addressing.
// ---------------------------------------------------------------------------

/// FNV-1a 64 over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The sweep's content hash: FNV-1a 64 over the canonical (decoded,
/// re-serialised) sweep spec and base spec JSON. Two sweeps hash equal iff
/// they compile to the same campaign matrix, so the hash binds every store
/// record to the exact study it belongs to.
pub fn sweep_content_hash(sweep: &Sweep) -> u64 {
    let mut text = sweep.spec.to_json();
    text.push('\n');
    text.push_str(&sweep.base.to_json());
    fnv1a64(text.as_bytes())
}

// ---------------------------------------------------------------------------
// Binary records.
// ---------------------------------------------------------------------------

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_field(buf: &mut Vec<u8>, field: &CellField) {
    push_u32(buf, field.grid().cols);
    push_u32(buf, field.grid().rows);
    push_u64(buf, field.accumulators().len() as u64);
    for w in field.accumulators() {
        let (n, mean, m2, min, max) = w.raw_parts();
        push_u64(buf, n);
        push_u64(buf, mean.to_bits());
        push_u64(buf, m2.to_bits());
        push_u64(buf, min.to_bits());
        push_u64(buf, max.to_bits());
    }
}

/// Sequential decoder over one record's bytes, producing path-anchored
/// truncation errors.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.pos + n > self.buf.len() {
            return Err(StoreError::new(
                self.path,
                format!(
                    "truncated record: wanted {n} bytes at offset {}, only {} remain",
                    self.pos,
                    self.buf.len() - self.pos
                ),
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn done(&self) -> Result<(), StoreError> {
        if self.pos != self.buf.len() {
            return Err(StoreError::new(
                self.path,
                format!("{} trailing bytes after the record payload", self.buf.len() - self.pos),
            ));
        }
        Ok(())
    }

    fn field(&mut self, expected: &GridSpec) -> Result<CellField, StoreError> {
        let cols = self.u32()?;
        let rows = self.u32()?;
        if (cols, rows) != (expected.cols, expected.rows) {
            return Err(StoreError::new(
                self.path,
                format!(
                    "grid shape mismatch: store has {cols}×{rows}, the sweep needs {}×{}",
                    expected.cols, expected.rows
                ),
            ));
        }
        let count = self.u64()? as usize;
        if count != expected.len() {
            return Err(StoreError::new(
                self.path,
                format!(
                    "accumulator count mismatch: store has {count}, the grid has {} cells",
                    expected.len()
                ),
            ));
        }
        let mut acc = Vec::with_capacity(count);
        for _ in 0..count {
            let n = self.u64()?;
            let mean = f64::from_bits(self.u64()?);
            let m2 = f64::from_bits(self.u64()?);
            let min = f64::from_bits(self.u64()?);
            let max = f64::from_bits(self.u64()?);
            acc.push(Welford::from_raw_parts(n, mean, m2, min, max));
        }
        Ok(CellField::from_accumulators(expected.clone(), acc))
    }
}

/// Frames `payload` with the magic, version, kind, spec hash and trailing
/// checksum.
fn frame(kind: u32, spec_hash: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    buf.extend_from_slice(MAGIC);
    push_u32(&mut buf, STORE_VERSION);
    push_u32(&mut buf, kind);
    push_u64(&mut buf, spec_hash);
    buf.extend_from_slice(payload);
    let sum = fnv1a64(&buf);
    push_u64(&mut buf, sum);
    buf
}

/// Verifies a record's frame and returns the payload. Check order is the
/// diagnostic one: truncation, magic, version, checksum (covers torn or
/// doctored payloads), then the spec-hash binding and record kind.
fn unframe<'a>(
    path: &Path,
    buf: &'a [u8],
    kind: u32,
    spec_hash: u64,
) -> Result<&'a [u8], StoreError> {
    if buf.len() < HEADER_LEN + 8 {
        return Err(StoreError::new(
            path,
            format!("truncated store file: {} bytes is shorter than any record", buf.len()),
        ));
    }
    if &buf[..8] != MAGIC {
        return Err(StoreError::new(path, "not a sixg sweep-store file (bad magic)"));
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    if version != STORE_VERSION {
        return Err(StoreError::new(
            path,
            format!("unsupported store version {version} (this build reads {STORE_VERSION})"),
        ));
    }
    let body = &buf[..buf.len() - 8];
    let want = u64::from_le_bytes(buf[buf.len() - 8..].try_into().expect("8 bytes"));
    if fnv1a64(body) != want {
        return Err(StoreError::new(
            path,
            "checksum mismatch — the file is truncated, partially written or corrupt",
        ));
    }
    let got_hash = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
    if got_hash != spec_hash {
        return Err(StoreError::new(
            path,
            format!(
                "spec hash mismatch: store was written for sweep {got_hash:016x}, \
                 this sweep hashes to {spec_hash:016x}"
            ),
        ));
    }
    let got_kind = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes"));
    if got_kind != kind {
        return Err(StoreError::new(
            path,
            format!("wrong record kind {got_kind} (expected {kind})"),
        ));
    }
    Ok(&body[HEADER_LEN..])
}

/// Decodes one run blob from bytes — the byte-level twin of
/// [`CheckpointStore::read_run`], used by the dispatch coordinator to fold
/// run records it received over the wire without ever touching disk.
/// `label` anchors error messages (a file path on disk, a descriptive
/// label for wire-received bytes).
pub fn decode_run_blob(
    label: &Path,
    buf: &[u8],
    run: u32,
    spec_hash: u64,
    grid: &GridSpec,
) -> Result<CellField, StoreError> {
    let payload = unframe(label, buf, KIND_RUN, spec_hash)?;
    let mut r = Reader { buf: payload, pos: 0, path: label };
    let stored_run = r.u32()?;
    if stored_run != run {
        return Err(StoreError::new(
            label,
            format!("blob is for run {stored_run}, expected run {run}"),
        ));
    }
    let field = r.field(grid)?;
    r.done()?;
    Ok(field)
}

/// Durable write: tmp file, fsync, rename over the target, best-effort
/// directory fsync — a kill leaves either the old record or the new one.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    let io = (|| -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    io.map_err(|e| StoreError::new(path, format!("cannot write: {e}")))
}

// ---------------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------------

/// The store's identity card, written once at creation as `manifest.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMeta {
    /// [`sweep_content_hash`] of the sweep this store belongs to.
    pub spec_hash: u64,
    /// Sweep name (informational; the hash is the binding).
    pub sweep: String,
    /// Total runs of the *whole* matrix (base + variants), all shards.
    pub total_runs: u64,
    /// Work items owned by this shard.
    pub total_items: u64,
    /// This shard's index (0 for an unsharded run).
    pub shard_index: u32,
    /// Total shards (1 for an unsharded run).
    pub shard_count: u32,
    /// First run this shard owns (inclusive).
    pub runs_from: u64,
    /// One past the last run this shard owns.
    pub runs_to: u64,
}

impl StoreMeta {
    /// The manifest's canonical JSON — deterministic field order, so the
    /// same meta always serialises to the same bytes (dispatch streams
    /// these bytes over the wire and seeds reassigned stores with them).
    pub fn to_json(&self) -> String {
        let v = Value::Object(vec![
            ("store_version".into(), Value::U64(STORE_VERSION as u64)),
            ("spec_hash".into(), Value::String(format!("{:016x}", self.spec_hash))),
            ("sweep".into(), Value::String(self.sweep.clone())),
            ("total_runs".into(), Value::U64(self.total_runs)),
            ("total_items".into(), Value::U64(self.total_items)),
            ("shard_index".into(), Value::U64(self.shard_index as u64)),
            ("shard_count".into(), Value::U64(self.shard_count as u64)),
            ("runs_from".into(), Value::U64(self.runs_from)),
            ("runs_to".into(), Value::U64(self.runs_to)),
        ]);
        serde_json::to_string_pretty(&v).expect("manifest serialises")
    }

    fn from_json(path: &Path, text: &str) -> Result<Self, StoreError> {
        let v: Value = serde_json::from_str(text)
            .map_err(|e| StoreError::new(path, format!("manifest is invalid JSON: {e}")))?;
        let u64_of = |name: &str| -> Result<u64, StoreError> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| StoreError::new(path, format!("manifest lacks `{name}`")))
        };
        let version = u64_of("store_version")?;
        if version != STORE_VERSION as u64 {
            return Err(StoreError::new(
                path,
                format!("unsupported store version {version} (this build reads {STORE_VERSION})"),
            ));
        }
        let hash_text = v
            .get("spec_hash")
            .and_then(Value::as_str)
            .ok_or_else(|| StoreError::new(path, "manifest lacks `spec_hash`"))?;
        let spec_hash = u64::from_str_radix(hash_text, 16)
            .map_err(|_| StoreError::new(path, format!("bad `spec_hash` {hash_text:?}")))?;
        Ok(Self {
            spec_hash,
            sweep: v.get("sweep").and_then(Value::as_str).unwrap_or_default().to_string(),
            total_runs: u64_of("total_runs")?,
            total_items: u64_of("total_items")?,
            shard_index: u64_of("shard_index")? as u32,
            shard_count: u64_of("shard_count")? as u32,
            runs_from: u64_of("runs_from")?,
            runs_to: u64_of("runs_to")?,
        })
    }
}

// ---------------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------------

/// The `(run, pass, cell)` resume point plus the in-progress run's partial
/// accumulator state. `next_item` indexes this shard's owned work list;
/// the `(run, pass, cell)` triple is that item spelled out, both as a
/// human-readable cursor and as a tamper check against the recomputed
/// work list at resume.
#[derive(Debug, Clone)]
pub struct CursorRecord {
    /// Index of the next unfolded item in the shard's work list
    /// (`== total_items` when the shard is complete).
    pub next_item: u64,
    /// The shard's work-list length (must match the recomputed plan).
    pub total_items: u64,
    /// Run index of the next item (0 when complete).
    pub next_run: u32,
    /// Traversal pass of the next item (0 when complete).
    pub next_pass: u32,
    /// Grid column of the next item's cell (0 when complete).
    pub next_col: u32,
    /// Grid row of the next item's cell (0 when complete).
    pub next_row: u32,
    /// The in-progress run's `(run, partial field)`, when the cursor sits
    /// mid-run.
    pub partial: Option<(u32, CellField)>,
}

impl CursorRecord {
    /// True when every owned item has been folded and spilled.
    pub fn is_complete(&self) -> bool {
        self.next_item == self.total_items && self.partial.is_none()
    }
}

/// One shard's on-disk checkpoint store.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    spec_hash: u64,
}

impl CheckpointStore {
    /// Opens (or initialises) the store at `dir` for the sweep described
    /// by `meta`. An existing manifest must agree with `meta` in every
    /// field — a directory holding some *other* sweep, shard range or
    /// format version is rejected, never silently adopted. A directory
    /// with blobs but no manifest is rejected as corrupt.
    pub fn open(dir: impl Into<PathBuf>, meta: &StoreMeta) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::new(&dir, format!("cannot create store directory: {e}")))?;
        let manifest = dir.join(MANIFEST_FILE);
        if manifest.exists() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| StoreError::new(&manifest, format!("cannot read: {e}")))?;
            let found = StoreMeta::from_json(&manifest, &text)?;
            if found.spec_hash != meta.spec_hash {
                return Err(StoreError::new(
                    &manifest,
                    format!(
                        "spec hash mismatch: store was written for sweep {:016x} (`{}`), \
                         this sweep hashes to {:016x}",
                        found.spec_hash, found.sweep, meta.spec_hash
                    ),
                ));
            }
            if found != *meta {
                return Err(StoreError::new(
                    &manifest,
                    format!(
                        "store geometry mismatch: manifest has shard {}/{} runs \
                         [{}, {}) over {} items, this invocation asks for shard {}/{} runs \
                         [{}, {}) over {} items",
                        found.shard_index,
                        found.shard_count,
                        found.runs_from,
                        found.runs_to,
                        found.total_items,
                        meta.shard_index,
                        meta.shard_count,
                        meta.runs_from,
                        meta.runs_to,
                        meta.total_items
                    ),
                ));
            }
        } else {
            let has_blobs = std::fs::read_dir(&dir)
                .map_err(|e| StoreError::new(&dir, format!("cannot list: {e}")))?
                .flatten()
                .any(|e| e.path().extension().is_some_and(|x| x == "blob"));
            if has_blobs {
                return Err(StoreError::new(
                    &dir,
                    "directory holds checkpoint blobs but no manifest — refusing to adopt it",
                ));
            }
            write_atomic(&manifest, meta.to_json().as_bytes())?;
        }
        Ok(Self { dir, spec_hash: meta.spec_hash })
    }

    /// Loads an existing store (merge path): the manifest must be present.
    pub fn load(dir: impl Into<PathBuf>) -> Result<(Self, StoreMeta), StoreError> {
        let dir = dir.into();
        let manifest = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&manifest)
            .map_err(|e| StoreError::new(&manifest, format!("cannot read: {e}")))?;
        let meta = StoreMeta::from_json(&manifest, &text)?;
        let spec_hash = meta.spec_hash;
        Ok((Self { dir, spec_hash }, meta))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn run_path(&self, run: u32) -> PathBuf {
        self.dir.join(run_blob_name(run))
    }

    fn cursor_path(&self) -> PathBuf {
        self.dir.join(CURSOR_FILE)
    }

    /// Spills one completed run's accumulators.
    pub fn write_run(&self, run: u32, field: &CellField) -> Result<(), StoreError> {
        self.write_run_bytes(run, field).map(|_| ())
    }

    /// Spills one completed run's accumulators and returns the exact
    /// framed bytes written to disk — the dispatch worker streams them
    /// verbatim, so the coordinator's copy is the on-disk record.
    pub fn write_run_bytes(&self, run: u32, field: &CellField) -> Result<Vec<u8>, StoreError> {
        let mut payload = Vec::new();
        push_u32(&mut payload, run);
        push_field(&mut payload, field);
        let bytes = frame(KIND_RUN, self.spec_hash, &payload);
        write_atomic(&self.run_path(run), &bytes)?;
        Ok(bytes)
    }

    /// Reads one run's accumulators back, bit for bit. `grid` is the grid
    /// the sweep's plan assigns to the run; a blob of any other shape is
    /// rejected.
    pub fn read_run(&self, run: u32, grid: &GridSpec) -> Result<CellField, StoreError> {
        let path = self.run_path(run);
        let buf = std::fs::read(&path)
            .map_err(|e| StoreError::new(&path, format!("cannot read: {e}")))?;
        decode_run_blob(&path, &buf, run, self.spec_hash, grid)
    }

    /// Writes the resume cursor (checkpoint commit point).
    pub fn write_cursor(&self, cursor: &CursorRecord) -> Result<(), StoreError> {
        self.write_cursor_bytes(cursor).map(|_| ())
    }

    /// Writes the resume cursor and returns the exact framed bytes written
    /// to disk (see [`Self::write_run_bytes`]).
    pub fn write_cursor_bytes(&self, cursor: &CursorRecord) -> Result<Vec<u8>, StoreError> {
        let mut payload = Vec::new();
        push_u64(&mut payload, cursor.next_item);
        push_u64(&mut payload, cursor.total_items);
        push_u32(&mut payload, cursor.next_run);
        push_u32(&mut payload, cursor.next_pass);
        push_u32(&mut payload, cursor.next_col);
        push_u32(&mut payload, cursor.next_row);
        match &cursor.partial {
            None => payload.push(0),
            Some((run, field)) => {
                payload.push(1);
                push_u32(&mut payload, *run);
                push_field(&mut payload, field);
            }
        }
        let bytes = frame(KIND_CURSOR, self.spec_hash, &payload);
        write_atomic(&self.cursor_path(), &bytes)?;
        Ok(bytes)
    }

    /// Reads the resume cursor; `None` when no checkpoint was ever
    /// committed (fresh store). `grid_of` resolves a run index to its grid
    /// (from the sweep's plan) so the partial field can be rebuilt.
    pub fn read_cursor(
        &self,
        grid_of: impl Fn(u32) -> Option<GridSpec>,
    ) -> Result<Option<CursorRecord>, StoreError> {
        let path = self.cursor_path();
        let buf = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::new(&path, format!("cannot read: {e}"))),
        };
        let payload = unframe(&path, &buf, KIND_CURSOR, self.spec_hash)?;
        let mut r = Reader { buf: payload, pos: 0, path: &path };
        let next_item = r.u64()?;
        let total_items = r.u64()?;
        let next_run = r.u32()?;
        let next_pass = r.u32()?;
        let next_col = r.u32()?;
        let next_row = r.u32()?;
        let partial = match r.take(1)?[0] {
            0 => None,
            1 => {
                let run = r.u32()?;
                let grid = grid_of(run).ok_or_else(|| {
                    StoreError::new(
                        &path,
                        format!("partial field names run {run}, which the sweep does not have"),
                    )
                })?;
                Some((run, r.field(&grid)?))
            }
            other => {
                return Err(StoreError::new(&path, format!("bad partial-field marker {other}")))
            }
        };
        r.done()?;
        Ok(Some(CursorRecord {
            next_item,
            total_items,
            next_run,
            next_pass,
            next_col,
            next_row,
            partial,
        }))
    }
}

// ---------------------------------------------------------------------------
// Checkpointed execution.
// ---------------------------------------------------------------------------

/// The contiguous run range shard `index` of `count` owns:
/// `[total·i/N, total·(i+1)/N)`. Covers every run exactly once across all
/// shards, with sizes differing by at most one.
pub fn shard_run_range(total_runs: usize, index: u32, count: u32) -> (usize, usize) {
    assert!(count >= 1 && index < count, "shard {index}/{count} is not a valid shard");
    let (i, n) = (index as usize, count as usize);
    (total_runs * i / n, total_runs * (i + 1) / n)
}

/// How to run a sweep checkpointed.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Store directory (one per sweep × shard).
    pub dir: PathBuf,
    /// This shard's index.
    pub shard_index: u32,
    /// Total shards.
    pub shard_count: u32,
    /// Work items folded between cursor commits.
    pub interval: usize,
    /// Testing hook: stop (with the cursor committed) once this many owned
    /// items have been folded, as if the process had been killed there.
    pub stop_after_items: Option<u64>,
}

impl CheckpointConfig {
    /// Unsharded checkpointing into `dir` with the default interval.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            shard_index: 0,
            shard_count: 1,
            interval: CHECKPOINT_INTERVAL,
            stop_after_items: None,
        }
    }
}

/// What a checkpointed invocation produced.
#[derive(Debug)]
pub enum CheckpointOutcome {
    /// Unsharded run finished: the full report, bitwise identical to
    /// [`Sweep::run`] on the same sweep.
    Complete(Box<SweepRun>),
    /// This shard's run range is fully spilled; merge the shards'
    /// stores with [`merge_stores`] (or `sixg-cli merge`) for the report.
    ShardComplete {
        /// This shard.
        shard_index: u32,
        /// Total shards.
        shard_count: u32,
        /// Items this shard folded in total.
        done_items: u64,
    },
    /// Stopped at a checkpoint boundary by `stop_after_items`; the store
    /// resumes from exactly here.
    Interrupted {
        /// Items folded so far (the committed cursor position).
        done_items: u64,
        /// The shard's work-list length.
        total_items: u64,
    },
}

/// One store mutation, observed as it commits. The dispatch worker maps
/// each event to a `STORE` frame so the coordinator always holds exactly
/// the state a fresh worker would need to resume this shard: spills are
/// observed *before* the cursor commit that covers them, so an observer
/// cut off mid-round is left with a cursor no newer than its blob set.
#[derive(Debug)]
pub enum StoreEvent<'a> {
    /// The store is open and validated (fresh or resumed); `manifest` is
    /// the canonical `manifest.json` bytes.
    Opened {
        /// The manifest bytes, exactly as on disk.
        manifest: &'a [u8],
    },
    /// A completed run's accumulators were spilled.
    RunSpilled {
        /// The run index.
        run: u32,
        /// The framed blob bytes, exactly as on disk.
        blob: &'a [u8],
    },
    /// The resume cursor was committed.
    CursorCommitted {
        /// Items folded so far (the committed cursor position).
        done_items: u64,
        /// The shard's work-list length.
        total_items: u64,
        /// The framed blob bytes, exactly as on disk.
        blob: &'a [u8],
    },
}

/// Runs `sweep` with on-disk checkpointing, resuming from whatever the
/// store already holds. See the module docs for the layout and the
/// bitwise-resume argument. The variant cap does not apply here — load the
/// sweep with [`Sweep::from_file_unbounded`] (or `new_unbounded`).
pub fn run_checkpointed(
    sweep: &Sweep,
    cfg: &CheckpointConfig,
) -> Result<CheckpointOutcome, CheckpointError> {
    run_checkpointed_observed(sweep, cfg, &mut |_| true)
}

/// [`run_checkpointed`] with a [`StoreEvent`] observer called at every
/// store mutation. The observer returning `false` stops the sweep at the
/// next safe point with [`CheckpointOutcome::Interrupted`] — the store
/// (and everything already observed) stays valid for resumption, exactly
/// as if the process had been killed there.
pub fn run_checkpointed_observed(
    sweep: &Sweep,
    cfg: &CheckpointConfig,
    observe: &mut dyn FnMut(StoreEvent<'_>) -> bool,
) -> Result<CheckpointOutcome, CheckpointError> {
    assert!(cfg.interval >= 1, "checkpoint interval must be at least 1");
    if !(cfg.shard_count >= 1 && cfg.shard_index < cfg.shard_count) {
        return Err(StoreError::new(
            &cfg.dir,
            format!("shard {}/{} is not a valid shard", cfg.shard_index, cfg.shard_count),
        )
        .into());
    }

    let plan = sweep.plan()?;
    let runners = plan.runners();
    let all_items = plan.items(&runners);
    let total_runs = plan.runs.len();
    let (runs_from, runs_to) = shard_run_range(total_runs, cfg.shard_index, cfg.shard_count);
    let owned: Vec<(u32, crate::campaign::Shard)> = all_items
        .iter()
        .copied()
        .filter(|(ri, _)| (runs_from..runs_to).contains(&(*ri as usize)))
        .collect();

    let meta = StoreMeta {
        spec_hash: sweep_content_hash(sweep),
        sweep: sweep.spec.name.clone(),
        total_runs: total_runs as u64,
        total_items: owned.len() as u64,
        shard_index: cfg.shard_index,
        shard_count: cfg.shard_count,
        runs_from: runs_from as u64,
        runs_to: runs_to as u64,
    };
    let store = CheckpointStore::open(&cfg.dir, &meta)?;

    // Resume point: the committed cursor, validated against the recomputed
    // work list, plus the in-progress run's partial accumulators.
    let grid_of = |r: u32| ((r as usize) < total_runs).then(|| plan.grid_of(r as usize).clone());
    let cursor = store.read_cursor(grid_of)?;
    let cursor_path = store.cursor_path();
    let (mut next, mut cur): (usize, Option<(u32, CellField)>) = match cursor {
        None => (0, None),
        Some(c) => {
            if c.total_items != owned.len() as u64 || c.next_item > c.total_items {
                return Err(StoreError::new(
                    &cursor_path,
                    format!(
                        "cursor covers {} items at position {}, but this shard's work list \
                         has {} items — the store belongs to a different sweep or shard",
                        c.total_items,
                        c.next_item,
                        owned.len()
                    ),
                )
                .into());
            }
            let next = c.next_item as usize;
            if next < owned.len() {
                let (ri, shard) = owned[next];
                let want = (ri, shard.pass, shard.cell.col, shard.cell.row);
                let got = (c.next_run, c.next_pass, c.next_col, c.next_row);
                if got != want {
                    return Err(StoreError::new(
                        &cursor_path,
                        format!(
                            "cursor points at (run {}, pass {}, cell {},{}) but item {next} \
                             of the recomputed work list is (run {}, pass {}, cell {},{})",
                            got.0, got.1, got.2, got.3, want.0, want.1, want.2, want.3
                        ),
                    )
                    .into());
                }
                if let Some((pr, _)) = &c.partial {
                    if *pr != ri {
                        return Err(StoreError::new(
                            &cursor_path,
                            format!(
                                "partial accumulator is for run {pr}, but the cursor's next \
                                 item belongs to run {ri}"
                            ),
                        )
                        .into());
                    }
                }
            } else if c.partial.is_some() {
                return Err(StoreError::new(
                    &cursor_path,
                    "cursor is complete yet carries a partial accumulator",
                )
                .into());
            }
            // Every owned run strictly before the cursor must have been
            // spilled; read each blob back now so corruption surfaces at
            // resume, not at the very end of a long run.
            let boundary = if next < owned.len() { owned[next].0 as usize } else { runs_to };
            for run in runs_from..boundary {
                store.read_run(run as u32, plan.grid_of(run))?;
            }
            (next, c.partial)
        }
    };

    // The store is open and the resume point validated: give the observer
    // the manifest first, so a streaming consumer can bind every later
    // blob to the store identity.
    let manifest_json = meta.to_json();
    let interrupted = |done: usize| CheckpointOutcome::Interrupted {
        done_items: done as u64,
        total_items: owned.len() as u64,
    };
    if !observe(StoreEvent::Opened { manifest: manifest_json.as_bytes() }) {
        return Ok(interrupted(next));
    }

    // The fold loop: rounds of `interval` items, cursor committed after
    // each round. Completed runs spill the moment their last item folds.
    let stop = cfg.stop_after_items.map(|s| s as usize);
    while next < owned.len() {
        if stop.is_some_and(|s| next >= s) {
            return Ok(interrupted(next));
        }
        let mut end = (next + cfg.interval).min(owned.len());
        if let Some(s) = stop {
            end = end.min(s.max(next + 1));
        }

        let mut io_err: Option<StoreError> = None;
        let mut observer_stopped = false;
        run_items_streaming(
            &owned[next..end],
            |(ri, shard), buf| runners[ri as usize].collect_shard_into(shard, buf),
            |(ri, shard), buf| {
                if io_err.is_some() || observer_stopped {
                    return;
                }
                if cur.as_ref().map(|(r, _)| *r) != Some(ri) {
                    if let Some((done_run, field)) = cur.take() {
                        match store.write_run_bytes(done_run, &field) {
                            Ok(blob) => {
                                if !observe(StoreEvent::RunSpilled { run: done_run, blob: &blob }) {
                                    observer_stopped = true;
                                    return;
                                }
                            }
                            Err(e) => {
                                io_err = Some(e);
                                return;
                            }
                        }
                    }
                    cur = Some((ri, CellField::new(plan.grid_of(ri as usize).clone())));
                }
                let field = &mut cur.as_mut().expect("current run field").1;
                for &v in buf {
                    field.push(shard.cell, v);
                }
            },
        );
        if let Some(e) = io_err {
            return Err(e.into());
        }
        // The observer bailed mid-round: the cursor on disk (and on the
        // observer's side) still points at the round start, which is a
        // valid resume point — runs spilled past it are harmless extras
        // a resume rewrites with identical bytes.
        if observer_stopped {
            return Ok(interrupted(next));
        }

        // Spill the current run if the round ended exactly on its boundary.
        let run_finished =
            end == owned.len() || cur.as_ref().is_some_and(|(r, _)| owned[end].0 != *r);
        if run_finished {
            if let Some((done_run, field)) = cur.take() {
                let blob = store.write_run_bytes(done_run, &field)?;
                if !observe(StoreEvent::RunSpilled { run: done_run, blob: &blob }) {
                    return Ok(interrupted(next));
                }
            }
        }

        next = end;
        let (next_run, next_pass, next_col, next_row) = if next < owned.len() {
            let (ri, shard) = owned[next];
            (ri, shard.pass, shard.cell.col, shard.cell.row)
        } else {
            (0, 0, 0, 0)
        };
        let blob = store.write_cursor_bytes(&CursorRecord {
            next_item: next as u64,
            total_items: owned.len() as u64,
            next_run,
            next_pass,
            next_col,
            next_row,
            partial: cur.clone(),
        })?;
        if !observe(StoreEvent::CursorCommitted {
            done_items: next as u64,
            total_items: owned.len() as u64,
            blob: &blob,
        }) {
            return Ok(interrupted(next));
        }
    }

    // Shard complete. An unsharded run reassembles the full report from the
    // spilled blobs — the same read-back path `merge_stores` uses, so the
    // resumed, the never-killed and the merged reports share every bit.
    if cfg.shard_count == 1 {
        let fields = (0..total_runs)
            .map(|run| store.read_run(run as u32, plan.grid_of(run)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CheckpointOutcome::Complete(Box::new(plan.build_sweep_run(sweep, fields))))
    } else {
        Ok(CheckpointOutcome::ShardComplete {
            shard_index: cfg.shard_index,
            shard_count: cfg.shard_count,
            done_items: owned.len() as u64,
        })
    }
}

/// Folds the disjoint shard stores of one sweep into the full
/// [`SweepRun`], bit-identical to an unsharded run. Every shard must be
/// complete, every run covered exactly once, and every store must carry
/// the sweep's content hash.
pub fn merge_stores(sweep: &Sweep, dirs: &[impl AsRef<Path>]) -> Result<SweepRun, CheckpointError> {
    let plan = sweep.plan()?;
    let total_runs = plan.runs.len();
    let spec_hash = sweep_content_hash(sweep);
    if dirs.is_empty() {
        return Err(SpecError::new("$", "merge needs at least one shard store").into());
    }

    let mut owner: Vec<Option<usize>> = vec![None; total_runs];
    let mut stores = Vec::with_capacity(dirs.len());
    for (di, dir) in dirs.iter().enumerate() {
        let dir = dir.as_ref();
        let (store, meta) = CheckpointStore::load(dir)?;
        if meta.spec_hash != spec_hash {
            return Err(StoreError::new(
                dir.join("manifest.json"),
                format!(
                    "spec hash mismatch: store was written for sweep {:016x} (`{}`), \
                     this sweep hashes to {spec_hash:016x}",
                    meta.spec_hash, meta.sweep
                ),
            )
            .into());
        }
        if meta.total_runs != total_runs as u64 {
            return Err(StoreError::new(
                dir.join("manifest.json"),
                format!(
                    "store covers a {}-run matrix, this sweep compiles to {total_runs} runs",
                    meta.total_runs
                ),
            )
            .into());
        }
        let grid_of =
            |r: u32| ((r as usize) < total_runs).then(|| plan.grid_of(r as usize).clone());
        let complete = store.read_cursor(grid_of)?.is_some_and(|c| c.is_complete());
        if !complete {
            return Err(StoreError::new(
                dir,
                "shard is incomplete — resume it with `sweep --checkpoint` before merging",
            )
            .into());
        }
        for run in meta.runs_from..meta.runs_to {
            let run = run as usize;
            if run >= total_runs {
                return Err(StoreError::new(
                    dir.join("manifest.json"),
                    format!(
                        "run range [{}, {}) exceeds the {total_runs}-run matrix",
                        meta.runs_from, meta.runs_to
                    ),
                )
                .into());
            }
            if let Some(prev) = owner[run] {
                return Err(StoreError::new(
                    dir,
                    format!(
                        "run {run} is owned by both {} and this store — shard ranges overlap",
                        dirs[prev].as_ref().display()
                    ),
                )
                .into());
            }
            owner[run] = Some(di);
        }
        stores.push(store);
    }

    let mut fields = Vec::with_capacity(total_runs);
    for (run, slot) in owner.iter().enumerate() {
        let Some(di) = *slot else {
            return Err(StoreError::new(
                dirs[0].as_ref().parent().unwrap_or_else(|| dirs[0].as_ref()),
                format!("no shard store covers run {run} — the shard set is incomplete"),
            )
            .into());
        };
        fields.push(stores[di].read_run(run as u32, plan.grid_of(run))?);
    }
    Ok(plan.build_sweep_run(sweep, fields))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_geo::{CellId, GeoPoint};

    fn grid() -> GridSpec {
        GridSpec::new(GeoPoint::new(46.65, 14.25), 4, 3, 1.0)
    }

    fn sample_field() -> CellField {
        let mut f = CellField::new(grid());
        for i in 0..200u64 {
            let cell = CellId::new((i % 4) as u32, (i % 3) as u32);
            f.push(cell, 35.0 + (i as f64 * 0.7).sin() * 12.0);
        }
        f
    }

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sixg-store-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn meta(hash: u64) -> StoreMeta {
        StoreMeta {
            spec_hash: hash,
            sweep: "unit".into(),
            total_runs: 3,
            total_items: 42,
            shard_index: 0,
            shard_count: 1,
            runs_from: 0,
            runs_to: 3,
        }
    }

    fn field_bits(f: &CellField) -> Vec<(u64, u64, u64, u64, u64)> {
        f.accumulators()
            .iter()
            .map(|w| {
                let (n, mean, m2, min, max) = w.raw_parts();
                (n, mean.to_bits(), m2.to_bits(), min.to_bits(), max.to_bits())
            })
            .collect()
    }

    #[test]
    fn run_blob_round_trips_bitwise() {
        let dir = scratch("roundtrip");
        let store = CheckpointStore::open(&dir, &meta(0xABCD)).expect("open");
        let f = sample_field();
        store.write_run(1, &f).expect("write");
        let back = store.read_run(1, &grid()).expect("read");
        assert_eq!(field_bits(&back), field_bits(&f));
        // Empty accumulators carry ±inf min/max — JSON could not represent
        // them, the binary blob must.
        let empty = CellField::new(grid());
        store.write_run(2, &empty).expect("write empty");
        let back = store.read_run(2, &grid()).expect("read empty");
        assert_eq!(field_bits(&back), field_bits(&empty));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cursor_round_trips_with_partial() {
        let dir = scratch("cursor");
        let store = CheckpointStore::open(&dir, &meta(7)).expect("open");
        assert!(store.read_cursor(|_| Some(grid())).expect("no cursor yet").is_none());
        let c = CursorRecord {
            next_item: 17,
            total_items: 42,
            next_run: 1,
            next_pass: 2,
            next_col: 3,
            next_row: 1,
            partial: Some((1, sample_field())),
        };
        store.write_cursor(&c).expect("write");
        let back = store.read_cursor(|_| Some(grid())).expect("read").expect("present");
        assert_eq!(back.next_item, 17);
        assert_eq!(back.total_items, 42);
        assert_eq!((back.next_run, back.next_pass, back.next_col, back.next_row), (1, 2, 3, 1));
        assert!(!back.is_complete());
        let (run, pf) = back.partial.expect("partial survives");
        assert_eq!(run, 1);
        assert_eq!(field_bits(&pf), field_bits(&sample_field()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_blob_is_rejected_with_path() {
        let dir = scratch("truncate");
        let store = CheckpointStore::open(&dir, &meta(9)).expect("open");
        store.write_run(0, &sample_field()).expect("write");
        let path = dir.join("run_00000.blob");
        let bytes = std::fs::read(&path).expect("read blob");
        for keep in [0usize, 10, 31, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..keep]).expect("truncate");
            let err = store.read_run(0, &grid()).expect_err("must reject");
            assert!(
                err.message.contains("truncated")
                    || err.message.contains("checksum")
                    || err.message.contains("shorter"),
                "keep={keep}: {err}"
            );
            assert!(err.path.contains("run_00000.blob"), "error must name the file: {err}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_version_and_magic_are_rejected() {
        let dir = scratch("version");
        let store = CheckpointStore::open(&dir, &meta(9)).expect("open");
        store.write_run(0, &sample_field()).expect("write");
        let path = dir.join("run_00000.blob");
        let good = std::fs::read(&path).expect("read blob");

        let mut bad = good.clone();
        bad[8] = 0xFF; // version field
        std::fs::write(&path, &bad).expect("doctor");
        let err = store.read_run(0, &grid()).expect_err("bad version");
        // The checksum notices the flip first unless it is recomputed; a
        // *consistently* re-signed wrong version must name the version.
        let mut resigned = good.clone();
        resigned[8] = 2;
        let body_len = resigned.len() - 8;
        let sum = fnv1a64(&resigned[..body_len]);
        resigned[body_len..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &resigned).expect("doctor");
        let err2 = store.read_run(0, &grid()).expect_err("bad version resigned");
        assert!(err2.message.contains("version"), "{err2}");
        assert!(err.message.contains("checksum") || err.message.contains("version"), "{err}");

        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).expect("doctor");
        let err = store.read_run(0, &grid()).expect_err("bad magic");
        assert!(err.message.contains("magic"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_hash_mismatch_is_rejected() {
        let dir = scratch("hash");
        let store = CheckpointStore::open(&dir, &meta(1)).expect("open");
        store.write_run(0, &sample_field()).expect("write");
        // Same directory opened for a different sweep: the manifest check
        // fires first.
        let err = CheckpointStore::open(&dir, &meta(2)).expect_err("different sweep");
        assert!(err.message.contains("spec hash mismatch"), "{err}");
        assert!(err.path.contains("manifest.json"), "{err}");
        // A blob smuggled across stores is caught by its own header.
        let other = CheckpointStore { dir: dir.clone(), spec_hash: 2 };
        let err = other.read_run(0, &grid()).expect_err("foreign blob");
        assert!(err.message.contains("spec hash mismatch"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let dir = scratch("corrupt");
        let store = CheckpointStore::open(&dir, &meta(5)).expect("open");
        store.write_run(0, &sample_field()).expect("write");
        let path = dir.join("run_00000.blob");
        let mut bytes = std::fs::read(&path).expect("read blob");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("doctor");
        let err = store.read_run(0, &grid()).expect_err("flipped bit");
        assert!(err.message.contains("checksum"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn blobs_without_manifest_are_not_adopted() {
        let dir = scratch("orphan");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("run_00000.blob"), b"junk").expect("plant blob");
        let err = CheckpointStore::open(&dir, &meta(1)).expect_err("orphan blobs");
        assert!(err.message.contains("no manifest"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_ranges_partition_all_runs() {
        for total in [1usize, 2, 3, 7, 100, 161] {
            for count in [1u32, 2, 3, 5, 8] {
                let mut covered = vec![false; total];
                let mut prev_end = 0;
                for i in 0..count {
                    let (a, b) = shard_run_range(total, i, count);
                    assert_eq!(a, prev_end, "ranges must be contiguous");
                    for slot in &mut covered[a..b] {
                        assert!(!*slot);
                        *slot = true;
                    }
                    prev_end = b;
                }
                assert_eq!(prev_end, total);
                assert!(covered.iter().all(|&c| c), "total={total} count={count}");
            }
        }
    }
}
