//! Per-cell aggregation of latency samples.
//!
//! Figures 2 and 3 of the paper are per-cell grids of mean and standard
//! deviation of round-trip latency, with cells holding fewer than ten
//! measurements rendered as `0.0`.

use serde::{Deserialize, Serialize};
use sixg_geo::{CellId, GridSpec};
use sixg_netsim::stats::Welford;

/// Minimum samples for a cell to be reported (paper Section IV-C).
pub const MIN_SAMPLES: u64 = 10;

/// Aggregated statistics of one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellStats {
    /// The cell.
    pub cell: CellId,
    /// Number of RTL samples collected while traversing the cell.
    pub count: u64,
    /// Mean round-trip latency, ms (0.0 when `count < MIN_SAMPLES`).
    pub mean_ms: f64,
    /// Sample standard deviation, ms (0.0 when `count < MIN_SAMPLES`).
    pub std_ms: f64,
}

impl CellStats {
    /// True when the cell is reported as `0.0` in the paper's figures.
    pub fn is_masked(&self) -> bool {
        self.count < MIN_SAMPLES
    }
}

/// A full per-cell field over a grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellField {
    grid: GridSpec,
    acc: Vec<Welford>,
}

impl CellField {
    /// Empty field over `grid`.
    pub fn new(grid: GridSpec) -> Self {
        let n = grid.len();
        Self { grid, acc: vec![Welford::new(); n] }
    }

    /// The grid this field is defined over.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    fn idx(&self, cell: CellId) -> usize {
        assert!(self.grid.contains(cell), "cell {cell} outside grid");
        cell.row as usize * self.grid.cols as usize + cell.col as usize
    }

    /// Records one RTL sample for a cell.
    pub fn push(&mut self, cell: CellId, rtl_ms: f64) {
        let i = self.idx(cell);
        self.acc[i].push(rtl_ms);
    }

    /// Folds `(cell, samples)` batches into the field in iteration order.
    ///
    /// This is the single accumulation path shared by the sequential and
    /// parallel campaign runners: as long as both present the same batches
    /// in the same order, the floating-point operation sequence — and hence
    /// every bit of the resulting statistics — is identical, regardless of
    /// how many threads *produced* the batches.
    pub fn accumulate_ordered(&mut self, batches: impl IntoIterator<Item = (CellId, Vec<f64>)>) {
        for (cell, samples) in batches {
            for v in samples {
                self.push(cell, v);
            }
        }
    }

    /// Merges another field (parallel reduction). Grids must match shape.
    ///
    /// Note the contrast with [`Self::accumulate_ordered`]: `merge` combines
    /// Welford accumulators pairwise (Chan's formula), which is numerically
    /// excellent but *not* bitwise identical to pushing the concatenated
    /// sample stream — use it where tolerance-based comparison suffices.
    ///
    /// **Disjoint-support contract.** There is one regime in which `merge`
    /// *is* bitwise exact: when, for every cell, at most one of the two
    /// operands holds samples. In that case the Welford merge degenerates to
    /// either a no-op (other side empty) or a verbatim copy of the non-empty
    /// accumulator (this side empty), so no floating-point arithmetic runs
    /// at all and every bit is preserved. Sweep shards own disjoint *run*
    /// ranges and therefore disjoint per-run accumulators, which is exactly
    /// why `sixg-cli merge` over shard stores bit-reproduces the
    /// single-machine report. Merging disjoint-support fields is consequently
    /// also order-independent — any merge tree over any permutation of the
    /// shards yields identical bits.
    pub fn merge(&mut self, other: &CellField) {
        assert_eq!(self.grid.cols, other.grid.cols, "grid shape mismatch");
        assert_eq!(self.grid.rows, other.grid.rows, "grid shape mismatch");
        for (a, b) in self.acc.iter_mut().zip(&other.acc) {
            a.merge(b);
        }
    }

    /// Statistics of one cell, with the masking rule applied.
    pub fn stats(&self, cell: CellId) -> CellStats {
        let w = &self.acc[self.idx(cell)];
        if w.count() < MIN_SAMPLES {
            CellStats { cell, count: w.count(), mean_ms: 0.0, std_ms: 0.0 }
        } else {
            CellStats { cell, count: w.count(), mean_ms: w.mean(), std_ms: w.sample_std_dev() }
        }
    }

    /// All cells' statistics, row-major.
    pub fn all_stats(&self) -> Vec<CellStats> {
        self.grid.cells().map(|c| self.stats(c)).collect()
    }

    /// Unmasked cells only.
    pub fn reported(&self) -> Vec<CellStats> {
        self.all_stats().into_iter().filter(|s| !s.is_masked()).collect()
    }

    /// Grand mean over *reported* cells (unweighted across cells, as the
    /// paper compares cell means).
    pub fn grand_mean_ms(&self) -> f64 {
        let rep = self.reported();
        if rep.is_empty() {
            return 0.0;
        }
        rep.iter().map(|s| s.mean_ms).sum::<f64>() / rep.len() as f64
    }

    /// Minimum / maximum reported cell means with their cells.
    pub fn mean_extrema(&self) -> Option<(CellStats, CellStats)> {
        let rep = self.reported();
        let min = rep.iter().min_by(|a, b| a.mean_ms.total_cmp(&b.mean_ms))?.clone();
        let max = rep.iter().max_by(|a, b| a.mean_ms.total_cmp(&b.mean_ms))?.clone();
        Some((min, max))
    }

    /// Minimum / maximum reported cell standard deviations.
    pub fn std_extrema(&self) -> Option<(CellStats, CellStats)> {
        let rep = self.reported();
        let min = rep.iter().min_by(|a, b| a.std_ms.total_cmp(&b.std_ms))?.clone();
        let max = rep.iter().max_by(|a, b| a.std_ms.total_cmp(&b.std_ms))?.clone();
        Some((min, max))
    }

    /// Total sample count over all cells.
    pub fn total_samples(&self) -> u64 {
        self.acc.iter().map(|w| w.count()).sum()
    }

    /// The raw per-cell accumulators, row-major — the exact internal state,
    /// exposed so the checkpoint store can persist a field bit for bit.
    pub fn accumulators(&self) -> &[Welford] {
        &self.acc
    }

    /// Rebuilds a field from [`Self::accumulators`] output verbatim.
    /// `acc.len()` must equal `grid.len()`.
    pub fn from_accumulators(grid: GridSpec, acc: Vec<Welford>) -> Self {
        assert_eq!(acc.len(), grid.len(), "accumulator count must match grid size");
        Self { grid, acc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_geo::GeoPoint;

    fn grid() -> GridSpec {
        GridSpec::new(GeoPoint::new(46.65, 14.25), 6, 7, 1.0)
    }

    #[test]
    fn masking_below_ten_samples() {
        let mut f = CellField::new(grid());
        let a = CellId::parse("A1").unwrap();
        let b = CellId::parse("B1").unwrap();
        for i in 0..9 {
            f.push(a, 50.0 + i as f64);
        }
        for i in 0..10 {
            f.push(b, 70.0 + i as f64);
        }
        assert!(f.stats(a).is_masked());
        assert_eq!(f.stats(a).mean_ms, 0.0);
        assert!(!f.stats(b).is_masked());
        assert!((f.stats(b).mean_ms - 74.5).abs() < 1e-9);
    }

    #[test]
    fn grand_mean_ignores_masked() {
        let mut f = CellField::new(grid());
        let a = CellId::parse("A1").unwrap();
        let b = CellId::parse("B1").unwrap();
        for _ in 0..20 {
            f.push(a, 60.0);
            f.push(b, 80.0);
        }
        f.push(CellId::parse("C1").unwrap(), 1000.0); // masked
        assert!((f.grand_mean_ms() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn extrema() {
        let mut f = CellField::new(grid());
        for (cell, v) in [("A1", 61.0), ("B1", 110.0), ("C1", 75.0)] {
            let c = CellId::parse(cell).unwrap();
            for k in 0..12 {
                f.push(c, v + (k % 3) as f64 * 0.1);
            }
        }
        let (min, max) = f.mean_extrema().unwrap();
        assert_eq!(min.cell.label(), "A1");
        assert_eq!(max.cell.label(), "B1");
    }

    #[test]
    fn merge_equals_sequential() {
        let c = CellId::parse("C3").unwrap();
        let mut whole = CellField::new(grid());
        let mut p1 = CellField::new(grid());
        let mut p2 = CellField::new(grid());
        for i in 0..100 {
            let v = 60.0 + (i as f64 * 0.7).sin() * 20.0;
            whole.push(c, v);
            if i % 2 == 0 {
                p1.push(c, v);
            } else {
                p2.push(c, v);
            }
        }
        p1.merge(&p2);
        let (a, b) = (whole.stats(c), p1.stats(c));
        assert_eq!(a.count, b.count);
        assert!((a.mean_ms - b.mean_ms).abs() < 1e-9);
        assert!((a.std_ms - b.std_ms).abs() < 1e-9);
    }

    #[test]
    fn accumulate_ordered_is_bitwise_equal_to_pushes() {
        let a = CellId::parse("A1").unwrap();
        let b = CellId::parse("B2").unwrap();
        let batches = vec![
            (a, (0..15).map(|i| 50.0 + (i as f64 * 0.3).sin()).collect::<Vec<_>>()),
            (b, (0..12).map(|i| 80.0 + (i as f64 * 0.7).cos()).collect::<Vec<_>>()),
            (a, (0..11).map(|i| 55.0 + i as f64 * 0.01).collect::<Vec<_>>()),
        ];
        let mut pushed = CellField::new(grid());
        for (cell, samples) in &batches {
            for &v in samples {
                pushed.push(*cell, v);
            }
        }
        let mut folded = CellField::new(grid());
        folded.accumulate_ordered(batches);
        for cell in [a, b] {
            let (x, y) = (pushed.stats(cell), folded.stats(cell));
            assert_eq!(x.count, y.count);
            assert_eq!(x.mean_ms.to_bits(), y.mean_ms.to_bits());
            assert_eq!(x.std_ms.to_bits(), y.std_ms.to_bits());
        }
    }

    #[test]
    fn empty_field_grand_mean_zero() {
        let f = CellField::new(grid());
        assert_eq!(f.grand_mean_ms(), 0.0);
        assert!(f.mean_extrema().is_none());
        assert_eq!(f.total_samples(), 0);
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn push_outside_panics() {
        let mut f = CellField::new(grid());
        f.push(CellId::new(20, 20), 1.0);
    }

    #[test]
    fn accumulator_round_trip_is_bitwise() {
        let mut f = CellField::new(grid());
        for i in 0..500u64 {
            let cell = CellId::new((i % 6) as u32, (i % 7) as u32);
            f.push(cell, 40.0 + (i as f64 * 0.13).sin() * 25.0);
        }
        let rebuilt = CellField::from_accumulators(f.grid().clone(), f.accumulators().to_vec());
        for (a, b) in f.accumulators().iter().zip(rebuilt.accumulators()) {
            assert_eq!(a.raw_parts().0, b.raw_parts().0);
            assert_eq!(a.raw_parts().1.to_bits(), b.raw_parts().1.to_bits());
            assert_eq!(a.raw_parts().2.to_bits(), b.raw_parts().2.to_bits());
            assert_eq!(a.raw_parts().3.to_bits(), b.raw_parts().3.to_bits());
            assert_eq!(a.raw_parts().4.to_bits(), b.raw_parts().4.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "accumulator count")]
    fn from_accumulators_rejects_shape_mismatch() {
        let _ = CellField::from_accumulators(grid(), vec![Welford::new(); 3]);
    }
}

/// The disjoint-support merge contract (see [`CellField::merge`]), pinned by
/// property tests: any partition of a sample stream into per-cell-disjoint
/// shards merges back to the unpartitioned field bit for bit, in any merge
/// order. This is the algebra `sixg-cli merge` relies on.
#[cfg(test)]
mod merge_contract {
    use super::*;
    use proptest::prelude::*;
    use sixg_geo::GeoPoint;
    use sixg_netsim::rng::splitmix64;

    fn grid() -> GridSpec {
        GridSpec::new(GeoPoint::new(46.65, 14.25), 6, 7, 1.0)
    }

    /// The exact bit pattern of every accumulator in the field.
    fn bits(f: &CellField) -> Vec<(u64, u64, u64, u64, u64)> {
        f.accumulators()
            .iter()
            .map(|w| {
                let (n, mean, m2, min, max) = w.raw_parts();
                (n, mean.to_bits(), m2.to_bits(), min.to_bits(), max.to_bits())
            })
            .collect()
    }

    /// Deterministic sample stream: `(cell, value)` pairs derived from `seed`.
    fn stream(seed: u64, len: usize) -> Vec<(CellId, f64)> {
        (0..len as u64)
            .map(|i| {
                let h = splitmix64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let cell = CellId::new((h % 6) as u32, ((h >> 8) % 7) as u32);
                let v = 30.0 + ((h >> 16) % 10_000) as f64 * 0.01;
                (cell, v)
            })
            .collect()
    }

    /// Splits the stream into `k` fields with per-cell-disjoint support:
    /// every cell's samples land in exactly one shard, chosen by `owner`.
    fn partition(
        samples: &[(CellId, f64)],
        k: usize,
        owner: impl Fn(CellId) -> usize,
    ) -> Vec<CellField> {
        let mut parts = vec![CellField::new(grid()); k];
        for &(cell, v) in samples {
            parts[owner(cell)].push(cell, v);
        }
        parts
    }

    /// Merges `parts` (in the given index order) into a fresh empty field.
    fn merge_in_order(parts: &[CellField], order: &[usize]) -> CellField {
        let mut out = CellField::new(grid());
        for &i in order {
            out.merge(&parts[i]);
        }
        out
    }

    proptest! {
        #[test]
        fn disjoint_kway_partition_merges_bitwise(
            seed in any::<u64>(),
            k in 2usize..7,
            len in 1usize..300,
        ) {
            let samples = stream(seed, len);
            let mut whole = CellField::new(grid());
            for &(cell, v) in &samples {
                whole.push(cell, v);
            }
            let parts = partition(&samples, k, |c| {
                splitmix64(seed ^ ((c.col as u64) << 8) ^ c.row as u64) as usize % k
            });
            let forward: Vec<usize> = (0..k).collect();
            prop_assert_eq!(bits(&merge_in_order(&parts, &forward)), bits(&whole));
        }

        #[test]
        fn disjoint_merge_is_order_independent(
            seed in any::<u64>(),
            k in 2usize..7,
            len in 1usize..300,
            rot in 0usize..7,
        ) {
            let samples = stream(seed, len);
            let parts = partition(&samples, k, |c| {
                splitmix64(seed ^ ((c.col as u64) << 8) ^ c.row as u64) as usize % k
            });
            let forward: Vec<usize> = (0..k).collect();
            let reversed: Vec<usize> = (0..k).rev().collect();
            let rotated: Vec<usize> = (0..k).map(|i| (i + rot) % k).collect();
            let reference = bits(&merge_in_order(&parts, &forward));
            prop_assert_eq!(bits(&merge_in_order(&parts, &reversed)), reference.clone());
            prop_assert_eq!(bits(&merge_in_order(&parts, &rotated)), reference);
        }

        #[test]
        fn skewed_two_way_split_merges_bitwise(
            seed in any::<u64>(),
            len in 1usize..300,
            skew in 1u64..10,
        ) {
            // One shard owns ~`skew`/10 of the cells — the degenerate splits
            // (one shard nearly empty) must round-trip just like even ones.
            let samples = stream(seed, len);
            let mut whole = CellField::new(grid());
            for &(cell, v) in &samples {
                whole.push(cell, v);
            }
            let parts = partition(&samples, 2, |c| {
                usize::from(splitmix64(seed ^ ((c.col as u64) << 8) ^ c.row as u64) % 10 >= skew)
            });
            prop_assert_eq!(bits(&merge_in_order(&parts, &[0, 1])), bits(&whole));
            prop_assert_eq!(bits(&merge_in_order(&parts, &[1, 0])), bits(&whole));
        }

        #[test]
        fn merging_empty_fields_is_identity(seed in any::<u64>(), len in 1usize..200) {
            let samples = stream(seed, len);
            let mut whole = CellField::new(grid());
            for &(cell, v) in &samples {
                whole.push(cell, v);
            }
            let reference = bits(&whole);
            whole.merge(&CellField::new(grid()));
            prop_assert_eq!(bits(&whole), reference.clone());
            let mut from_empty = CellField::new(grid());
            from_empty.merge(&whole);
            prop_assert_eq!(bits(&from_empty), reference);
        }
    }
}
