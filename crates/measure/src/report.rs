//! Rendering and export of campaign results.
//!
//! Figures 2 and 3 of the paper are grid heatmaps; the closest faithful
//! terminal artefact is a labelled grid table. CSV and JSON exports feed
//! external plotting.

use crate::aggregate::CellField;
use serde::Serialize;
use sixg_geo::CellId;

/// Which statistic of the field to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldStat {
    /// Mean RTL (Figure 2).
    Mean,
    /// Standard deviation (Figure 3).
    StdDev,
    /// Sample count.
    Count,
}

fn value_of(field: &CellField, cell: CellId, stat: FieldStat) -> f64 {
    let s = field.stats(cell);
    match stat {
        FieldStat::Mean => s.mean_ms,
        FieldStat::StdDev => s.std_ms,
        FieldStat::Count => s.count as f64,
    }
}

/// Renders the field as a labelled grid table (columns A…, rows 1…),
/// masked cells showing `0.0` exactly as in the paper's figures.
pub fn render_grid(field: &CellField, stat: FieldStat) -> String {
    let grid = field.grid();
    let mut out = String::new();
    out.push_str("     ");
    for c in 0..grid.cols {
        // Column letters of the cell label (spreadsheet style; plain A–Z
        // below 26, so legacy-grid tables render byte-identically).
        let label = CellId::new(c, 0).label();
        let letters = label.trim_end_matches(|ch: char| ch.is_ascii_digit());
        out.push_str(&format!("{letters:>8}"));
    }
    out.push('\n');
    for r in 0..grid.rows {
        out.push_str(&format!("{:>4} ", r + 1));
        for c in 0..grid.cols {
            let v = value_of(field, CellId::new(c, r), stat);
            out.push_str(&format!("{v:>8.1}"));
        }
        out.push('\n');
    }
    out
}

/// CSV export: `cell,count,mean_ms,std_ms` per row.
pub fn to_csv(field: &CellField) -> String {
    let mut out = String::from("cell,count,mean_ms,std_ms\n");
    for s in field.all_stats() {
        out.push_str(&format!("{},{},{:.3},{:.3}\n", s.cell.label(), s.count, s.mean_ms, s.std_ms));
    }
    out
}

/// JSON-serialisable summary of a campaign.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignSummary {
    /// Per-cell stats of reported cells.
    pub cells: Vec<CellSummary>,
    /// Grand mean over reported cells, ms.
    pub grand_mean_ms: f64,
    /// Reported min/max means.
    pub mean_min_ms: f64,
    /// Reported max mean.
    pub mean_max_ms: f64,
    /// Reported σ extremes.
    pub std_min_ms: f64,
    /// Reported σ max.
    pub std_max_ms: f64,
    /// Total samples collected.
    pub total_samples: u64,
}

/// One reported cell in the JSON summary.
#[derive(Debug, Clone, Serialize)]
pub struct CellSummary {
    /// Cell label (`"C3"`).
    pub cell: String,
    /// Sample count.
    pub count: u64,
    /// Mean RTL, ms.
    pub mean_ms: f64,
    /// Sample σ, ms.
    pub std_ms: f64,
}

impl CampaignSummary {
    /// Builds the summary from a field.
    pub fn from_field(field: &CellField) -> Self {
        let (mmin, mmax) = field.mean_extrema().expect("non-empty field");
        let (smin, smax) = field.std_extrema().expect("non-empty field");
        Self {
            cells: field
                .reported()
                .into_iter()
                .map(|s| CellSummary {
                    cell: s.cell.label(),
                    count: s.count,
                    mean_ms: s.mean_ms,
                    std_ms: s.std_ms,
                })
                .collect(),
            grand_mean_ms: field.grand_mean_ms(),
            mean_min_ms: mmin.mean_ms,
            mean_max_ms: mmax.mean_ms,
            std_min_ms: smin.std_ms,
            std_max_ms: smax.std_ms,
            total_samples: field.total_samples(),
        }
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("summary serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixg_geo::{GeoPoint, GridSpec};

    fn field() -> CellField {
        let grid = GridSpec::new(GeoPoint::new(46.65, 14.25), 6, 7, 1.0);
        let mut f = CellField::new(grid);
        for (cell, v) in [("C1", 61.0), ("C3", 110.0), ("B3", 63.0)] {
            let c = CellId::parse(cell).unwrap();
            for k in 0..20 {
                f.push(c, v + (k % 5) as f64 * 0.5);
            }
        }
        f
    }

    #[test]
    fn grid_rendering_contains_masked_zeros() {
        let f = field();
        let s = render_grid(&f, FieldStat::Mean);
        assert!(s.contains("0.0"), "{s}");
        assert!(s.contains("62.0"), "{s}");
        assert!(s.contains("111.0"), "{s}");
        assert!(s.lines().count() == 8, "{s}");
    }

    #[test]
    fn csv_has_all_cells() {
        let f = field();
        let csv = to_csv(&f);
        assert_eq!(csv.lines().count(), 43); // header + 42 cells
        assert!(csv.contains("C1,20,"));
        assert!(csv.contains("A1,0,0.000,0.000"));
    }

    #[test]
    fn summary_extrema() {
        let f = field();
        let s = CampaignSummary::from_field(&f);
        assert_eq!(s.cells.len(), 3);
        assert!((s.mean_min_ms - 62.0).abs() < 1.5);
        assert!((s.mean_max_ms - 111.0).abs() < 1.5);
        let json = s.to_json();
        assert!(json.contains("\"grand_mean_ms\""));
    }
}
