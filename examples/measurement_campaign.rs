//! Running a custom measurement campaign: sweep seeds in parallel with
//! rayon, export CSV/JSON, and verify parallel determinism.
//!
//! ```text
//! cargo run --release --example measurement_campaign
//! ```

use sixg::measure::campaign::{CampaignConfig, MobileCampaign};
use sixg::measure::exec::run_field;
use sixg::measure::klagenfurt::KlagenfurtScenario;
use sixg::measure::parallel::seed_sweep;
use sixg::measure::report::{to_csv, CampaignSummary};
use sixg::measure::spec::ExecBackend;

fn main() {
    let scenario = KlagenfurtScenario::paper(42);

    // Parallel == sequential, bit for bit.
    let config = CampaignConfig { passes: 2, ..Default::default() };
    let seq = MobileCampaign::new(&scenario, config).run();
    let par = run_field(&scenario, config, ExecBackend::Analytic);
    let identical = scenario
        .grid
        .cells()
        .all(|c| seq.stats(c).mean_ms.to_bits() == par.stats(c).mean_ms.to_bits());
    println!("rayon result bitwise identical to sequential: {identical}");

    // Multi-seed sweep (each seed is one synthetic campaign day).
    let seeds: Vec<u64> = (1..=8).collect();
    println!("\nseed sweep (grand mean / min / max of cell means):");
    for p in seed_sweep(&scenario, CampaignConfig::default(), &seeds) {
        println!(
            "  seed {:>2}: {:>6.1} ms   [{:>5.1} .. {:>6.1}]",
            p.seed, p.grand_mean_ms, p.mean_range.0, p.mean_range.1
        );
    }

    // Exports.
    let field = MobileCampaign::new(&scenario, CampaignConfig::dense(1)).run();
    let csv = to_csv(&field);
    let json = CampaignSummary::from_field(&field).to_json();
    println!("\nCSV rows: {}, JSON bytes: {}", csv.lines().count(), json.len());
    println!("first CSV lines:\n{}", csv.lines().take(4).collect::<Vec<_>>().join("\n"));
}
