//! Exploring Section V-B: deploy UPFs at three tiers, optimise placement
//! for the campaign's 33 cells, and route traffic classes dynamically.
//!
//! ```text
//! cargo run --release --example upf_placement
//! ```

use sixg::core::recommend::upf::{deploy_upfs, place_upfs, select_upf, service_rtt_ms, Dataplane};
use sixg::measure::klagenfurt::KlagenfurtScenario;
use sixg::netsim::packet::TrafficClass;
use sixg::netsim::radio::FiveGAccess;
use sixg::netsim::rng::SimRng;
use sixg::netsim::routing::PathComputer;
use sixg::netsim::topology::NodeId;

fn main() {
    let mut scenario = KlagenfurtScenario::paper(42);
    let upfs = deploy_upfs(&mut scenario, Dataplane::SmartNic);
    println!("deployed {} UPF tiers:", upfs.len());
    for u in &upfs {
        println!("  {:?} at {}", u.tier, scenario.topo.node(u.node).name);
    }

    // Placement optimisation over the mobile demand.
    let pc = PathComputer::new(&scenario.topo, &scenario.as_graph);
    let candidates: Vec<NodeId> = upfs.iter().map(|u| u.node).collect();
    let clients: Vec<(NodeId, f64)> = scenario.ue.values().map(|&n| (n, 1.0)).collect();
    for k in 1..=3 {
        let sol = place_upfs(&pc, &candidates, &clients, k);
        let names: Vec<&str> =
            sol.chosen.iter().map(|&n| scenario.topo.node(n).name.as_str()).collect();
        println!("k={k}: sites {:?} -> mean UE latency {:.2} ms", names, sol.mean_latency_ms);
    }

    // Dynamic selection per traffic class from the C2 cell.
    let c2 = sixg::geo::CellId::parse("C2").unwrap();
    let ue = scenario.ue[&c2];
    let access = FiveGAccess::ideal();
    let mut rng = SimRng::from_seed(3);
    println!("\nper-class service RTT from C2 (ideal cell, SmartNIC UPFs):");
    for class in [
        TrafficClass::Critical,
        TrafficClass::Interactive,
        TrafficClass::Management,
        TrafficClass::Bulk,
    ] {
        let upf = select_upf(class, &upfs);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| {
                service_rtt_ms(&scenario.topo, &pc, ue, upf, &access, 0.5e6, &mut rng)
                    .expect("routable")
            })
            .sum::<f64>()
            / n as f64;
        println!("  {class:?} -> {:?} UPF: {mean:.2} ms", upf.tier);
    }
}
