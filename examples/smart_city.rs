//! Section III-C's scalability scenario: how many Tokyo-scale
//! intersections can each network generation sustain, and what a factory
//! line / vehicle fleet asks of the network.
//!
//! ```text
//! cargo run --release --example smart_city
//! ```

use sixg::netsim::radio::{FiveGAccess, SixGAccess};
use sixg::netsim::rng::SimRng;
use sixg::workloads::industrial::FactoryLine;
use sixg::workloads::smart_city::{tokyo_scenario, NetworkClass};
use sixg::workloads::vehicles::SensorSuite;

fn main() {
    println!("Tokyo adaptive traffic management (50,000 intersections):");
    println!(
        "{:<16} {:>12} {:>10} {:>10} {:>14}",
        "network", "sustainable", "deadline", "density", "offered Gbit/s"
    );
    for class in [NetworkClass::measured_5g(), NetworkClass::spec_5g(), NetworkClass::target_6g()] {
        let a = tokyo_scenario(class);
        println!(
            "{:<16} {:>12} {:>10} {:>10} {:>14.1}",
            a.class_name,
            a.sustainable,
            if a.deadline_met { "ok" } else { "miss" },
            if a.density_ok { "ok" } else { "over" },
            a.offered_bps / 1e9
        );
    }

    let suite = SensorSuite::l4_reference();
    println!(
        "\nautonomous vehicle: {:.1} TB/day raw sensors; full real-time offload \
         needs {:.2} Gbit/s uplink",
        suite.tb_per_day(),
        suite.offload_bps(1.0) / 1e9
    );

    let line = FactoryLine::reference();
    println!(
        "factory line: {} devices, {:.1} TB/day, {:.0} Mbit/s sustained",
        line.device_count(),
        line.tb_per_day(),
        line.offered_bps() / 1e6
    );

    println!("\nclosed-loop feasibility per device class (fraction of loops on time):");
    let mut rng = SimRng::from_seed(1);
    let fiveg = line.loop_feasibility(&FiveGAccess::ideal(), 3000, &mut rng);
    let sixg = line.loop_feasibility(&SixGAccess::default(), 3000, &mut rng);
    println!("{:<24} {:>12} {:>12}", "class", "5G ideal", "6G target");
    for ((name, f5), (_, f6)) in fiveg.iter().zip(&sixg) {
        println!("{:<24} {:>11.1}% {:>11.1}%", name, f5 * 100.0, f6 * 100.0);
    }
}
