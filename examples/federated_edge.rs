//! Future-work demo: federated learning at the edge (Section VI).
//!
//! Compares FedAvg round time and total training wall-clock across access
//! technologies and uplink provisioning — the communication budget 6G
//! frees up.
//!
//! ```text
//! cargo run --release --example federated_edge
//! ```

use sixg::netsim::radio::{AccessModel, CellEnv, FiveGAccess, SixGAccess};
use sixg::netsim::rng::SimRng;
use sixg::netsim::topology::NodeId;
use sixg::workloads::federated::{rounds_to_converge, run_federated, FlConfig};
use sixg::workloads::services::Service;

fn main() {
    let aggregator = Service::new("fedavg-edge", NodeId(0), 50.0);

    println!(
        "{:<30} {:>12} {:>14} {:>16}",
        "configuration", "round (s)", "straggler", "1k-round wall"
    );
    let cases: [(&str, f64, f64, Box<dyn AccessModel>); 4] = [
        ("6G / 50 Mbit/s uplink", 50e6, 200e6, Box::new(SixGAccess::default())),
        ("6G / 5 Mbit/s uplink", 5e6, 50e6, Box::new(SixGAccess::default())),
        ("5G ideal / 50 Mbit/s", 50e6, 200e6, Box::new(FiveGAccess::ideal())),
        ("5G loaded / 50 Mbit/s", 50e6, 200e6, Box::new(FiveGAccess::new(CellEnv::new(0.9, 0.7)))),
    ];
    for (name, up, down, access) in cases {
        let mut cfg = FlConfig::reference(aggregator.clone(), up, down);
        cfg.rounds = 100;
        let mut rng = SimRng::from_seed(17);
        let stats = run_federated(&cfg, access.as_ref(), &mut rng);
        println!(
            "{:<30} {:>12.2} {:>13.1}% {:>14.1} h",
            name,
            stats.mean_round_s,
            stats.straggler_overhead * 100.0,
            stats.mean_round_s * 1000.0 / 3600.0
        );
    }

    println!("\nconvergence budget (rounds for epsilon=0.03):");
    for k in [2usize, 5, 10, 20] {
        println!("  {k:>2} participants/round -> {} rounds", rounds_to_converge(0.03, k));
    }
}
