//! The paper's AR dodgeball use case end to end: two headsets, three
//! services, and the 20 ms pose budget — compared across access
//! technologies and service placements.
//!
//! ```text
//! cargo run --release --example ar_gaming
//! ```

use sixg::geo::GeoPoint;
use sixg::netsim::radio::{AccessModel, CellEnv, FiveGAccess, SixGAccess};
use sixg::netsim::rng::SimRng;
use sixg::netsim::routing::{AsGraph, PathComputer};
use sixg::netsim::topology::{Asn, LinkParams, NodeKind, Topology};
use sixg::workloads::ar_game::{ArGame, ArGameConfig};
use sixg::workloads::services::Service;
use sixg::workloads::video::{VideoConfig, VideoStream};

fn main() {
    // Two players in Klagenfurt; services on the local MEC host.
    let mut topo = Topology::new();
    let thrower =
        topo.add_node(NodeKind::UserEquipment, "quest-a", GeoPoint::new(46.61, 14.28), Asn(1));
    let victim =
        topo.add_node(NodeKind::UserEquipment, "quest-b", GeoPoint::new(46.63, 14.31), Asn(1));
    let edge = topo.add_node(NodeKind::EdgeServer, "mec", GeoPoint::new(46.62, 14.30), Asn(1));
    topo.add_link(thrower, edge, LinkParams::access_wired());
    topo.add_link(victim, edge, LinkParams::access_wired());
    let as_graph = AsGraph::new();
    let pc = PathComputer::new(&topo, &as_graph);

    let game = ArGame {
        thrower,
        victim,
        video: Service::new("video-streaming", edge, 2.0),
        controller: Service::new("remote-controller", edge, 0.5),
        trajectory: Service::new("trajectory", edge, 1.5),
        config: ArGameConfig { throws: 3000, ..Default::default() },
    };

    println!("{:<22} {:>10} {:>12} {:>14}", "access", "unfair", "pose age", "event latency");
    let accesses: [(&str, Box<dyn AccessModel>); 3] = [
        ("5G loaded cell", Box::new(FiveGAccess::new(CellEnv::new(0.9, 0.5)))),
        ("5G ideal cell", Box::new(FiveGAccess::ideal())),
        ("6G target", Box::new(SixGAccess::default())),
    ];
    for (name, access) in &accesses {
        let mut rng = SimRng::from_seed(7);
        let r = game
            .play(&pc, Some(access.as_ref()), Some(access.as_ref()), &mut rng)
            .expect("routable");
        println!(
            "{:<22} {:>9.2}% {:>10.1} ms {:>12.1} ms",
            name,
            r.unfair_ratio() * 100.0,
            r.mean_pose_age_ms,
            r.mean_event_latency_ms
        );
    }

    // The bidirectional video stream between the players' views.
    let stream = VideoStream::new(VideoConfig::ar_headset());
    let hops = pc.route(victim, edge).expect("routable").hops;
    let mut rng = SimRng::from_seed(8);
    let sixg = SixGAccess::default();
    let stats = stream.deliver(&topo, &hops, 1800, |r| sixg.sample_rtt_ms(r) / 2.0, &mut rng);
    println!(
        "\nvideo over 6G: {} frames, mean {:.1} ms, late {:.2} % (20 ms budget)",
        stats.frames,
        stats.mean_latency_ms,
        stats.late_ratio * 100.0
    );
}
