//! Quickstart: build the measured Klagenfurt scenario, run a small
//! campaign, and print the paper's headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sixg::core::gap::GapReport;
use sixg::core::requirements::campaign_reference_requirement;
use sixg::measure::campaign::{CampaignConfig, MobileCampaign};
use sixg::measure::klagenfurt::KlagenfurtScenario;
use sixg::measure::report::{render_grid, FieldStat};

fn main() {
    // 1. Build the scenario: topology, AS policies, grid, calibration.
    let scenario = KlagenfurtScenario::paper(42);
    println!(
        "scenario: {} nodes, {} links, {} ASes, {} traversed cells",
        scenario.topo.node_count(),
        scenario.topo.link_count(),
        scenario.topo.asns().len(),
        scenario.included.len()
    );

    // 2. Run one measurement pass (the paper's Figures 2-3 pipeline).
    let field = MobileCampaign::new(&scenario, CampaignConfig::default()).run();
    println!("\nmean RTL per cell (ms):\n{}", render_grid(&field, FieldStat::Mean));

    // 3. Gap analysis against the AR use case's 20 ms budget.
    let gap = GapReport::analyse(&field, &campaign_reference_requirement());
    println!(
        "grand mean {:.1} ms -> exceeds the {} ms requirement by {:.0} % \
         ({} of {} cells compliant)",
        gap.measured_mean_ms,
        gap.requirement_ms,
        gap.exceedance_pct,
        gap.compliant_cells,
        gap.reported_cells
    );

    // 4. The ten-hop local request of Table I.
    let trace = MobileCampaign::new(&scenario, CampaignConfig::default()).table1_traceroute(0);
    println!("\nTable I traceroute ({} hops, {:.1} ms):", trace.hop_count(), trace.total_rtt_ms());
    print!("{trace}");
}
