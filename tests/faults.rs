//! Convergence property suite for the live control plane.
//!
//! The message-level BGP speakers of `sixg::netsim::routing::dynamic`
//! promise to *converge to exactly the static Gao–Rexford fixed point*
//! when no faults perturb the topology. This suite locks that equivalence
//! down three ways:
//!
//! * on every committed spec (Klagenfurt, Skopje, the megacity sector and
//!   the transit-flap variant), the converged RIB's best route — AS
//!   sequence, preference class, and the router-level stitching — must
//!   equal the statically cached route for every (cell, target) pair;
//! * on a family of seeded, randomly generated AS hierarchies (transit
//!   DAG + random peerings), dynamic and static selection must agree for
//!   *every* ordered AS pair, and every usable Adj-RIB-In entry must be
//!   valley-free — the Gao–Rexford export discipline holds not just for
//!   winners but for everything the speakers accepted;
//! * the fault-bearing campaign runner must produce identical *reports*
//!   (JSON summary and CSV, byte for byte) at pool sizes 1, 2 and 4.

use sixg::measure::campaign::CampaignConfig;
use sixg::measure::exec::run_field;
use sixg::measure::parallel::with_thread_count;
use sixg::measure::report::{to_csv, CampaignSummary};
use sixg::measure::scenario::Scenario;
use sixg::measure::spec::ScenarioSpec;
use sixg::measure::ExecBackend;
use sixg::netsim::rng::SimRng;
use sixg::netsim::routing::bgp::AsGraph;
use sixg::netsim::routing::dynamic::ControlPlane;
use sixg::netsim::routing::PathComputer;
use sixg::netsim::topology::Asn;
use std::collections::BTreeSet;

/// Asserts that the converged dynamic control plane reproduces the
/// scenario's statically computed routes exactly.
fn assert_dynamic_equals_static(s: &Scenario) {
    let cp = ControlPlane::converged_from_topology(&s.topo, &s.as_graph);
    let pc = PathComputer::new(&s.topo, &s.as_graph);
    let targets = s.measurement_targets();
    assert!(!s.routes.is_empty(), "{}: no routes to check", s.name);
    for (&(cell, ti), cached) in &s.routes {
        let ue = s.ue[&cell];
        let target = targets[ti];
        let dynamic = cp
            .best_route(s.topo.node(ue).asn, s.topo.node(target).asn)
            .and_then(|as_path| pc.route_along(ue, target, &as_path));
        let got = dynamic.as_ref().expect("dynamic control plane must reach every static target");
        assert_eq!(
            got.as_path, cached.as_path,
            "{}: cell {cell} target {ti}: AS path / preference class diverged",
            s.name
        );
        assert_eq!(
            got.hops, cached.hops,
            "{}: cell {cell} target {ti}: router-level stitching diverged",
            s.name
        );
    }
}

#[test]
fn klagenfurt_dynamic_routes_equal_static() {
    let s = Scenario::from_spec(&ScenarioSpec::klagenfurt()).expect("compiles");
    assert_dynamic_equals_static(&s);
}

#[test]
fn klagenfurt_flap_dynamic_routes_equal_static() {
    // The flap spec's *unfaulted* topology (with the backup Vienna
    // crossing in place) must still pick the measured detour statically
    // and dynamically alike.
    let s = Scenario::from_spec(&ScenarioSpec::klagenfurt_flap()).expect("compiles");
    assert_dynamic_equals_static(&s);
}

#[test]
fn skopje_dynamic_routes_equal_static() {
    let s = Scenario::from_spec(&ScenarioSpec::skopje()).expect("compiles");
    assert_dynamic_equals_static(&s);
}

#[test]
fn megacity_dynamic_routes_equal_static() {
    let s = Scenario::from_spec(&ScenarioSpec::megacity()).expect("compiles");
    assert_dynamic_equals_static(&s);
}

/// A random multi-tier AS hierarchy: a few tier-1s peered in a clique,
/// mid-tier transits each buying from 1–2 tier-1s, stubs each buying from
/// 1–2 mid-tiers, plus random lateral peerings inside each tier. Every AS
/// is reachable from every other (the tier-1 clique guarantees an
/// up-over-down path), and the graph exercises multi-homing, peering
/// shortcuts and tiebreaks.
fn fuzzed_graph(seed: u64) -> AsGraph {
    let mut rng = SimRng::from_seed(seed);
    let mut g = AsGraph::new();
    let tier1: Vec<Asn> = (0..2 + rng.below(2)).map(|i| Asn(100 + i as u32)).collect();
    let mid: Vec<Asn> = (0..2 + rng.below(3)).map(|i| Asn(200 + i as u32)).collect();
    let stubs: Vec<Asn> = (0..3 + rng.below(4)).map(|i| Asn(300 + i as u32)).collect();
    for (i, &a) in tier1.iter().enumerate() {
        for &b in &tier1[i + 1..] {
            g.add_peering(a, b);
        }
    }
    for tier in [(&mid, &tier1), (&stubs, &mid)] {
        let (lower, upper) = tier;
        for &customer in lower {
            let first = *rng.choose(upper);
            g.add_transit(first, customer);
            if rng.chance(0.5) {
                let second = *rng.choose(upper);
                if second != first {
                    g.add_transit(second, customer);
                }
            }
        }
        for (i, &a) in lower.iter().enumerate() {
            for &b in &lower[i + 1..] {
                if rng.chance(0.3) && g.relationship(a, b).is_none() {
                    g.add_peering(a, b);
                }
            }
        }
    }
    g
}

/// All adjacent AS pairs as live sessions (a pure-graph control plane —
/// no topology restricting which relationships have physical links).
fn all_sessions(g: &AsGraph) -> BTreeSet<(u32, u32)> {
    let mut out = BTreeSet::new();
    for a in g.asns() {
        for (b, _) in g.neighbours(a) {
            out.insert((a.0.min(b.0), a.0.max(b.0)));
        }
    }
    out
}

#[test]
fn fuzzed_hierarchies_dynamic_equals_static_for_every_pair() {
    for seed in 0..12u64 {
        let g = fuzzed_graph(seed);
        let cp = ControlPlane::converged(&g, &all_sessions(&g));
        for src in g.asns() {
            for dst in g.asns() {
                let dynamic = cp.best_route(src, dst);
                let static_ = g.as_path(src, dst);
                assert_eq!(
                    dynamic,
                    static_,
                    "seed {seed}: {src:?} -> {dst:?} diverged (graph {:?})",
                    g.asns()
                );
            }
        }
    }
}

#[test]
fn fuzzed_hierarchies_keep_every_rib_entry_valley_free() {
    // Stronger than best-route agreement: *everything* a speaker holds in
    // its usable Adj-RIB-In — winners and alternates alike — must be a
    // valley-free path, or the export policy leaked a route it should
    // have filtered.
    for seed in 0..12u64 {
        let g = fuzzed_graph(seed);
        let cp = ControlPlane::converged(&g, &all_sessions(&g));
        let mut entries = 0usize;
        for x in g.asns() {
            for path in cp.rib(x) {
                assert!(
                    g.is_valley_free(&path),
                    "seed {seed}: RIB of {x:?} holds a valley: {path:?}"
                );
                entries += 1;
            }
        }
        assert!(entries > 0, "seed {seed}: converged control plane holds no routes");
    }
}

#[test]
fn flap_campaign_reports_are_identical_at_1_2_4_threads() {
    // The full export surface — JSON summary and CSV — must come out byte
    // for byte identical at every pool size, not just the stats structs.
    let s = Scenario::from_spec(&ScenarioSpec::klagenfurt_flap()).expect("compiles");
    let config = CampaignConfig { seed: 2, passes: 1, sample_interval_s: 2.0 };
    let reference = with_thread_count(1, || run_field(&s, config, ExecBackend::Event));
    let ref_json = CampaignSummary::from_field(&reference).to_json();
    let ref_csv = to_csv(&reference);
    for threads in [2usize, 4] {
        let field = with_thread_count(threads, || run_field(&s, config, ExecBackend::Event));
        assert_eq!(
            CampaignSummary::from_field(&field).to_json(),
            ref_json,
            "{threads}-thread JSON report differs"
        );
        assert_eq!(to_csv(&field), ref_csv, "{threads}-thread CSV report differs");
    }
}
