//! Property-based tests on the workspace's core invariants.

use proptest::prelude::*;
use sixg::geo::{CellId, GeoPoint, GridSpec, Polyline};
use sixg::measure::scenario::KeyScheme;
use sixg::measure::spec::PACKABLE_GRID_DIM;
use sixg::netsim::dist::{
    Exponential, LogNormal, Normal, Pareto, Quantile, Sample, Uniform, Weibull,
};
use sixg::netsim::engine::Engine;
use sixg::netsim::queueing::{md1_wait, mg1_wait, mm1_wait, Load};
use sixg::netsim::radio::{AccessModel, CellEnv, FiveGAccess};
use sixg::netsim::rng::{SimRng, StreamKey};
use sixg::netsim::routing::{shortest_path, AsGraph};
use sixg::netsim::stats::Welford;
use sixg::netsim::time::SimDuration;
use sixg::netsim::topology::{Asn, LinkParams, NodeKind, Topology};

/// Distance between two floats in units in the last place, measured on the
/// monotone integer number line (sign-magnitude bits folded around zero).
fn ulps_apart(a: f64, b: f64) -> u64 {
    fn fix(v: i64) -> i64 {
        if v < 0 {
            i64::MIN - v
        } else {
            v
        }
    }
    fix(a.to_bits() as i64).abs_diff(fix(b.to_bits() as i64))
}

/// Neumaier-compensated sum: the correctly rounded reference the streaming
/// accumulator is held against.
fn compensated_sum(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut c) = (0.0f64, 0.0f64);
    for x in xs {
        let t = sum + x;
        c += if sum.abs() >= x.abs() { (sum - t) + x } else { (x - t) + sum };
        sum = t;
    }
    sum + c
}

proptest! {
    // --- geometry -------------------------------------------------------

    #[test]
    fn haversine_is_a_metric(
        lat1 in -80.0f64..80.0, lon1 in -179.0f64..179.0,
        lat2 in -80.0f64..80.0, lon2 in -179.0f64..179.0,
        lat3 in -80.0f64..80.0, lon3 in -179.0f64..179.0,
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let c = GeoPoint::new(lat3, lon3);
        // Symmetry.
        prop_assert!((a.distance_km(b) - b.distance_km(a)).abs() < 1e-6);
        // Identity.
        prop_assert!(a.distance_km(a) < 1e-6);
        // Triangle inequality (with numeric slack).
        prop_assert!(a.distance_km(c) <= a.distance_km(b) + b.distance_km(c) + 1e-6);
    }

    #[test]
    fn destination_distance_round_trip(
        lat in -70.0f64..70.0, lon in -170.0f64..170.0,
        bearing in 0.0f64..360.0, dist in 0.1f64..5000.0,
    ) {
        let start = GeoPoint::new(lat, lon);
        let end = start.destination(bearing, dist);
        prop_assert!((start.distance_km(end) - dist).abs() / dist < 0.01);
    }

    #[test]
    fn grid_locate_centroid_round_trip(cols in 1u32..12, rows in 1u32..12, cell_km in 0.2f64..3.0) {
        let grid = GridSpec::new(GeoPoint::new(46.6, 14.3), cols, rows, cell_km);
        for cell in grid.cells() {
            prop_assert_eq!(grid.locate(grid.centroid(cell)), Some(cell));
        }
    }

    #[test]
    fn polyline_never_shorter_than_direct(
        pts in prop::collection::vec((-60.0f64..60.0, -150.0f64..150.0), 2..8)
    ) {
        let line = Polyline::new(pts.iter().map(|&(la, lo)| GeoPoint::new(la, lo)).collect());
        prop_assert!(line.geodesic_km() + 1e-6 >= line.direct_km());
    }

    // --- randomness & distributions -------------------------------------

    #[test]
    fn stream_keys_are_reproducible(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        let k1 = StreamKey::root(seed).with(a).with(b);
        let k2 = StreamKey::root(seed).with(a).with(b);
        prop_assert_eq!(k1.value(), k2.value());
        let mut r1 = SimRng::for_stream(k1);
        let mut r2 = SimRng::for_stream(k2);
        for _ in 0..16 {
            prop_assert_eq!(r1.bits(), r2.bits());
        }
    }

    #[test]
    fn distributions_are_non_negative(seed in any::<u64>(), mean in 0.1f64..100.0, cv in 0.01f64..2.0) {
        let mut rng = SimRng::from_seed(seed);
        let ln = LogNormal::from_mean_cv(mean, cv);
        let ex = Exponential::with_mean(mean);
        let wb = Weibull::new(mean, 1.3);
        for _ in 0..64 {
            prop_assert!(ln.sample(&mut rng) > 0.0);
            prop_assert!(ex.sample(&mut rng) >= 0.0);
            prop_assert!(wb.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn welford_matches_two_pass_reference(xs in prop::collection::vec(0.1f64..1e3, 2..300)) {
        // Streaming Welford vs a naive two-pass reference (compensated sums,
        // so the reference itself is correctly rounded). On positive,
        // latency-like data the streaming result lands within a handful of
        // ulps — each update's rounding contributes at most ~1 ulp and they
        // mostly cancel. (Bitwise equality is impossible here: the two
        // algorithms perform different operation sequences.)
        const MAX_ULPS: u64 = 24;
        let mut w = Welford::new();
        for &x in &xs { w.push(x); }
        let n = xs.len() as f64;
        let mean_ref = compensated_sum(xs.iter().copied()) / n;
        let m2_ref = compensated_sum(xs.iter().map(|x| (x - mean_ref) * (x - mean_ref)));
        let std_ref = (m2_ref / (n - 1.0)).sqrt();
        let mean_ulps = ulps_apart(w.mean(), mean_ref);
        let std_ulps = ulps_apart(w.sample_std_dev(), std_ref);
        prop_assert!(mean_ulps <= MAX_ULPS,
            "mean {} vs ref {} is {} ulps apart", w.mean(), mean_ref, mean_ulps);
        prop_assert!(std_ulps <= MAX_ULPS,
            "std {} vs ref {} is {} ulps apart", w.sample_std_dev(), std_ref, std_ulps);
    }

    #[test]
    fn welford_merge_equals_concatenation(xs in prop::collection::vec(0.1f64..1e3, 2..300), split in 1usize..299) {
        // Chan's merge of two accumulators must agree with accumulating the
        // concatenated stream — not bitwise (the operation sequences
        // differ), but within the same few-ulp envelope as above.
        const MAX_ULPS: u64 = 48;
        let split = split.min(xs.len() - 1);
        let mut whole = Welford::new();
        for &x in &xs { whole.push(x); }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..split] { left.push(x); }
        for &x in &xs[split..] { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert_eq!(left.min().to_bits(), whole.min().to_bits());
        prop_assert_eq!(left.max().to_bits(), whole.max().to_bits());
        let mean_ulps = ulps_apart(left.mean(), whole.mean());
        let std_ulps = ulps_apart(left.sample_std_dev(), whole.sample_std_dev());
        prop_assert!(mean_ulps <= MAX_ULPS,
            "merged mean {} vs streamed {} is {} ulps apart", left.mean(), whole.mean(), mean_ulps);
        prop_assert!(std_ulps <= MAX_ULPS,
            "merged std {} vs streamed {} is {} ulps apart",
            left.sample_std_dev(), whole.sample_std_dev(), std_ulps);
    }

    #[test]
    fn quantiles_are_monotone(p1 in 0.001f64..0.999, p2 in 0.001f64..0.999,
                              mean in 0.5f64..100.0, shape in 0.6f64..4.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let dists: Vec<Box<dyn Quantile>> = vec![
            Box::new(Uniform::new(0.0, mean * 2.0)),
            Box::new(Exponential::with_mean(mean)),
            Box::new(Normal::new(mean, mean / shape)),
            Box::new(LogNormal::from_mean_cv(mean, 1.0 / shape)),
            Box::new(Pareto::new(mean, shape + 1.0)),
            Box::new(Weibull::new(mean, shape)),
        ];
        for d in &dists {
            let (qlo, qhi) = (d.quantile(lo), d.quantile(hi));
            prop_assert!(qlo.is_finite() && qhi.is_finite());
            prop_assert!(qlo <= qhi, "quantile not monotone: q({lo}) = {qlo} > q({hi}) = {qhi}");
        }
    }

    #[test]
    fn quantile_round_trips_through_sampler(seed in any::<u64>(), mean in 0.5f64..50.0) {
        // Inverse-transform samplers draw u and return quantile(u): every
        // sample must therefore be *some* quantile, and the empirical CDF at
        // the p-quantile must converge on p (checked coarsely).
        let d = Exponential::with_mean(mean);
        let mut rng = SimRng::from_seed(seed);
        let q90 = d.quantile(0.9);
        let below = (0..2000).filter(|_| d.sample(&mut rng) <= q90).count();
        let frac = below as f64 / 2000.0;
        prop_assert!((frac - 0.9).abs() < 0.04, "frac {frac} at p=0.9");
    }

    #[test]
    fn welford_merge_is_consistent(xs in prop::collection::vec(-1e4f64..1e4, 2..200), split in 1usize..199) {
        let split = split.min(xs.len() - 1);
        let mut whole = Welford::new();
        for &x in &xs { whole.push(x); }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..split] { left.push(x); }
        for &x in &xs[split..] { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-3);
    }

    // --- cell-key schemes -------------------------------------------------

    #[test]
    fn legacy_keys_match_the_historical_packing(col in 0u32..256, row in 0u32..256) {
        // Every pre-widening golden bit was produced under `(col << 8) | row`;
        // the versioned scheme must reproduce it exactly for packable grids.
        let cell = CellId::new(col, row);
        prop_assert_eq!(KeyScheme::Legacy.cell_key(cell), ((col as u64) << 8) | row as u64);
    }

    #[test]
    fn wide_keys_are_injective(
        c1 in 0u32..1_000_000, r1 in 0u32..1_000_000,
        c2 in 0u32..1_000_000, r2 in 0u32..1_000_000,
    ) {
        let (a, b) = (CellId::new(c1, r1), CellId::new(c2, r2));
        let equal_keys = KeyScheme::Wide.cell_key(a) == KeyScheme::Wide.cell_key(b);
        prop_assert_eq!(equal_keys, a == b, "wide keys must collide iff the cells coincide");
    }

    #[test]
    fn scheme_selection_is_a_pure_function_of_the_dims(cols in 1u32..5000, rows in 1u32..5000) {
        let scheme = KeyScheme::for_dims(cols, rows);
        let packable = cols <= PACKABLE_GRID_DIM && rows <= PACKABLE_GRID_DIM;
        prop_assert_eq!(scheme == KeyScheme::Legacy, packable);
        prop_assert_eq!(scheme, KeyScheme::for_dims(cols, rows));
    }

    #[test]
    fn selected_scheme_never_collides_within_its_grid(
        cols in 1u32..5000, rows in 1u32..5000,
        picks in prop::collection::vec((0u32..5000, 0u32..5000), 2..40),
    ) {
        // Whichever scheme `for_dims` selects for a spec's grid, keys of
        // distinct in-grid cells never collide — the guarantee the
        // per-cell RNG stream derivation rests on.
        let scheme = KeyScheme::for_dims(cols, rows);
        let cells: Vec<CellId> =
            picks.iter().map(|&(c, r)| CellId::new(c % cols, r % rows)).collect();
        for (i, &a) in cells.iter().enumerate() {
            for &b in &cells[i + 1..] {
                if a != b {
                    prop_assert_ne!(scheme.cell_key(a), scheme.cell_key(b),
                        "scheme {:?} collided on {} vs {}", scheme, a, b);
                }
            }
        }
    }

    // --- queueing --------------------------------------------------------

    #[test]
    fn queueing_formulas_ordered(lambda in 0.1f64..9.0, mu in 10.0f64..20.0) {
        let load = Load::new(lambda, mu);
        // M/D/1 <= M/G/1(cs2<1) <= M/M/1.
        prop_assert!(md1_wait(load) <= mg1_wait(load, 0.5) + 1e-12);
        prop_assert!(mg1_wait(load, 0.5) <= mm1_wait(load) + 1e-12);
        // Waits grow with load.
        let heavier = Load::new(lambda * 1.05, mu);
        prop_assert!(mm1_wait(heavier) >= mm1_wait(load));
    }

    // --- radio model ------------------------------------------------------

    #[test]
    fn radio_mean_monotone_in_load(load1 in 0.0f64..1.0, load2 in 0.0f64..1.0, intf in 0.0f64..1.0) {
        let (lo, hi) = if load1 <= load2 { (load1, load2) } else { (load2, load1) };
        let a = FiveGAccess::new(CellEnv::new(lo, intf));
        let b = FiveGAccess::new(CellEnv::new(hi, intf));
        prop_assert!(a.mean_rtt_ms() <= b.mean_rtt_ms() + 1e-9);
    }

    #[test]
    fn radio_variance_monotone_in_interference(load in 0.0f64..1.0, i1 in 0.0f64..1.0, i2 in 0.0f64..1.0) {
        let (lo, hi) = if i1 <= i2 { (i1, i2) } else { (i2, i1) };
        let a = FiveGAccess::new(CellEnv::new(load, lo));
        let b = FiveGAccess::new(CellEnv::new(load, hi));
        prop_assert!(a.var_rtt_ms2() <= b.var_rtt_ms2() + 1e-9);
    }

    #[test]
    fn radio_fit_hits_feasible_targets(mean in 8.0f64..70.0, cv in 0.05f64..0.7) {
        let std = mean * cv;
        let m = FiveGAccess::fit(mean, std);
        // Inside the parameter box the fit must recover the mean well;
        // at the box edges it clamps (checked separately).
        if m.env.load > 0.001 && m.env.load < 0.999 {
            prop_assert!((m.mean_rtt_ms() - mean).abs() < 1.0,
                "mean {} for target {}", m.mean_rtt_ms(), mean);
        }
    }

    // --- engine -----------------------------------------------------------

    #[test]
    fn engine_executes_in_time_order(delays in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut world: Vec<u64> = Vec::new();
        for &d in &delays {
            eng.schedule(SimDuration(d), move |e, w: &mut Vec<u64>| w.push(e.now().0));
        }
        eng.run(&mut world);
        prop_assert_eq!(world.len(), delays.len());
        for pair in world.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
    }

    // --- routing -----------------------------------------------------------

    #[test]
    fn spf_path_is_connected_and_acyclic(n in 3usize..12, extra in 0usize..8, seed in any::<u64>()) {
        let mut topo = Topology::new();
        let mut rng = SimRng::from_seed(seed);
        let ids: Vec<_> = (0..n)
            .map(|i| {
                let lat = 46.0 + rng.unit();
                let lon = 14.0 + rng.unit();
                topo.add_node(NodeKind::CoreRouter, format!("r{i}"), GeoPoint::new(lat, lon), Asn(1))
            })
            .collect();
        // Spanning chain guarantees connectivity; extras add shortcuts.
        for w in ids.windows(2) {
            topo.add_link(w[0], w[1], LinkParams::backbone());
        }
        for _ in 0..extra {
            let a = ids[rng.below(n as u64) as usize];
            let b = ids[rng.below(n as u64) as usize];
            if a != b {
                topo.add_link(a, b, LinkParams::metro());
            }
        }
        let (hops, cost) = shortest_path(&topo, ids[0], ids[n - 1], |_| true).expect("connected");
        prop_assert!(cost >= 0.0);
        // Path is loop-free.
        let mut seen = vec![ids[0]];
        for (node, _) in &hops {
            prop_assert!(!seen.contains(node), "loop at {node:?}");
            seen.push(*node);
        }
        prop_assert_eq!(*seen.last().unwrap(), ids[n - 1]);
    }

    #[test]
    fn bgp_paths_are_valley_free(seed in any::<u64>(), n_as in 3u32..10) {
        let mut rng = SimRng::from_seed(seed);
        let mut g = AsGraph::new();
        // Random transit tree + a few peerings.
        for i in 1..n_as {
            let provider = rng.below(i as u64) as u32;
            g.add_transit(Asn(provider), Asn(i));
        }
        for _ in 0..n_as / 2 {
            let a = rng.below(n_as as u64) as u32;
            let b = rng.below(n_as as u64) as u32;
            if a != b && g.relationship(Asn(a), Asn(b)).is_none() {
                g.add_peering(Asn(a), Asn(b));
            }
        }
        for src in 0..n_as {
            for dst in 0..n_as {
                if let Some(path) = g.as_path(Asn(src), Asn(dst)) {
                    prop_assert!(g.is_valley_free(&path.asns), "{:?}", path.asns);
                    prop_assert_eq!(*path.asns.first().unwrap(), Asn(src));
                    prop_assert_eq!(*path.asns.last().unwrap(), Asn(dst));
                }
            }
        }
    }
}

#[test]
fn key_scheme_flips_exactly_past_the_packable_cap() {
    assert_eq!(KeyScheme::for_dims(PACKABLE_GRID_DIM, PACKABLE_GRID_DIM), KeyScheme::Legacy);
    assert_eq!(KeyScheme::for_dims(PACKABLE_GRID_DIM + 1, 1), KeyScheme::Wide);
    assert_eq!(KeyScheme::for_dims(1, PACKABLE_GRID_DIM + 1), KeyScheme::Wide);
}

#[test]
fn cell_ids_round_trip_all_labels() {
    for col in 0..26u32 {
        for row in 0..99u32 {
            let cell = CellId::new(col, row);
            assert_eq!(CellId::parse(&cell.label()), Some(cell));
        }
    }
}
