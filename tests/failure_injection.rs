//! Failure-injection tests: the simulator must degrade gracefully — and
//! realistically — when links die or policies are withdrawn.

use sixg::measure::klagenfurt::{KlagenfurtScenario, ASCUS_AS, OP_AS};
use sixg::netsim::routing::PathComputer;
use sixg::netsim::topology::LinkId;
use std::sync::OnceLock;

const SEED: u64 = 0x6B6C_7531;

fn scenario() -> &'static KlagenfurtScenario {
    static S: OnceLock<KlagenfurtScenario> = OnceLock::new();
    S.get_or_init(|| KlagenfurtScenario::paper(SEED))
}

fn find_link(s: &KlagenfurtScenario, a: &str, b: &str) -> LinkId {
    let na = s.topo.find_by_name(a).unwrap_or_else(|| panic!("node {a}"));
    let nb = s.topo.find_by_name(b).unwrap_or_else(|| panic!("node {b}"));
    s.topo.neighbours(na).find(|(n, _)| *n == nb).unwrap_or_else(|| panic!("link {a}-{b}")).1
}

#[test]
fn transit_link_failure_partitions_the_detour() {
    // The Prague peering wave is the only way from DataPacket's hierarchy
    // into zet.net — killing it makes the anchor unreachable for mobile
    // traffic: exactly why the paper calls the integration "suboptimal".
    let mut s = KlagenfurtScenario::paper(SEED);
    let (ue, anchor) = s.table1_endpoints();
    let prague_wave = find_link(&s, "cdn77-core-vie", "zetservers-prg");
    s.topo.remove_link(prague_wave);

    let pc = PathComputer::new(&s.topo, &s.as_graph);
    assert!(pc.route(ue, anchor).is_none(), "no alternate transit should exist");
}

#[test]
fn peering_restores_connectivity_after_transit_failure() {
    // With local peering in place (Section V-A), the same failure is
    // invisible to local flows.
    let mut s = KlagenfurtScenario::paper(SEED);
    let (ue, anchor) = s.table1_endpoints();
    let prague_wave = find_link(&s, "cdn77-core-vie", "zetservers-prg");

    sixg::core::recommend::peering::apply_local_peering(
        &mut s,
        sixg::core::recommend::peering::PeeringDepth::LocalIsp,
    );
    s.topo.remove_link(prague_wave);

    let pc = PathComputer::new(&s.topo, &s.as_graph);
    let path = pc.route(ue, anchor).expect("peered path survives transit failure");
    assert!(path.hop_count() <= 3);
}

#[test]
fn access_link_failure_isolates_one_cell_only() {
    let mut s = KlagenfurtScenario::paper(SEED);
    let c2 = sixg::geo::CellId::parse("C2").unwrap();
    let c3 = sixg::geo::CellId::parse("C3").unwrap();
    let ue2 = s.ue[&c2];
    let ue3 = s.ue[&c3];
    let (_, anchor) = s.table1_endpoints();

    let ue2_link = s.topo.neighbours(ue2).next().expect("ue has uplink").1;
    s.topo.remove_link(ue2_link);

    let pc = PathComputer::new(&s.topo, &s.as_graph);
    assert!(pc.route(ue2, anchor).is_none(), "C2 is cut off");
    assert!(pc.route(ue3, anchor).is_some(), "C3 unaffected");
}

#[test]
fn policy_withdrawal_equals_physical_failure() {
    // Withdrawing the DataPacket-zet peering agreement has the same
    // routing effect as cutting the wave physically.
    let mut s = KlagenfurtScenario::paper(SEED);
    let (ue, anchor) = s.table1_endpoints();
    s.as_graph.remove_peering(
        sixg::measure::klagenfurt::DATAPACKET_AS,
        sixg::measure::klagenfurt::ZET_AS,
    );
    let pc = PathComputer::new(&s.topo, &s.as_graph);
    assert!(pc.route(ue, anchor).is_none());
}

#[test]
fn wired_peers_survive_mobile_side_failures() {
    let mut s = KlagenfurtScenario::paper(SEED);
    let gw_uplink = find_link(&s, "op-cgnat-klu", "dp-edge-vie");
    s.topo.remove_link(gw_uplink);
    // The wired world (peers ↔ anchor ↔ cloud) is untouched.
    let pc = PathComputer::new(&s.topo, &s.as_graph);
    let (_, anchor) = s.table1_endpoints();
    for &peer in &s.peers {
        assert!(pc.route(peer, anchor).is_some());
        assert!(pc.route(peer, s.cloud.expect("Klagenfurt has a cloud")).is_some());
    }
}

#[test]
fn poisoned_worker_propagates_and_pool_stays_usable() {
    // A panicking closure inside `par_iter` must unwind out of the calling
    // thread (not deadlock the pool, not abort a worker for good) and leave
    // the pool fully usable — including for the campaign runner.
    use rayon::prelude::*;
    use sixg::measure::campaign::{CampaignConfig, MobileCampaign};
    use sixg::measure::exec::run_field;
    use sixg::measure::parallel::with_thread_count;
    use sixg::measure::ExecBackend;

    with_thread_count(4, || {
        let poisoned = std::panic::catch_unwind(|| {
            (0..128u32)
                .into_par_iter()
                .map(|i| if i % 37 == 5 { panic!("injected worker failure at {i}") } else { i })
                .collect::<Vec<u32>>()
        });
        assert!(poisoned.is_err(), "worker panic must propagate to the caller");

        // The pool serves subsequent batches normally...
        for round in 0..3 {
            let xs: Vec<u32> = (0..512u32).into_par_iter().map(|x| x * 2).collect();
            assert_eq!(xs.len(), 512, "round {round}");
            assert_eq!(xs[511], 1022, "round {round}");
        }

        // ...and the determinism contract still holds after the poisoning.
        let s = scenario();
        let config = CampaignConfig::default();
        let seq = MobileCampaign::new(s, config).run();
        let par = run_field(s, config, ExecBackend::Analytic);
        for cell in s.grid.cells() {
            let (a, b) = (seq.stats(cell), par.stats(cell));
            assert_eq!(a.count, b.count, "cell {cell}");
            assert_eq!(a.mean_ms.to_bits(), b.mean_ms.to_bits(), "cell {cell}");
        }
    });
}

#[test]
fn poisoned_worker_leaves_event_backend_usable_and_deterministic() {
    // Same contract as the analytic runner: a worker panic inside the
    // pool propagates to the caller, and the pool then serves the
    // packet-level event backend normally — bitwise-deterministically.
    use rayon::prelude::*;
    use sixg::measure::campaign::CampaignConfig;
    use sixg::measure::event_backend::EventCampaign;
    use sixg::measure::exec::run_field;
    use sixg::measure::parallel::with_thread_count;
    use sixg::measure::ExecBackend;

    with_thread_count(4, || {
        let poisoned = std::panic::catch_unwind(|| {
            (0..96u32)
                .into_par_iter()
                .map(|i| if i == 41 { panic!("injected worker failure at {i}") } else { i })
                .collect::<Vec<u32>>()
        });
        assert!(poisoned.is_err(), "worker panic must propagate to the caller");

        let s = scenario();
        let config = CampaignConfig::default();
        let seq = EventCampaign::new(s, config).run();
        let par = run_field(s, config, ExecBackend::Event);
        for cell in s.grid.cells() {
            let (a, b) = (seq.stats(cell), par.stats(cell));
            assert_eq!(a.count, b.count, "cell {cell}");
            assert_eq!(a.mean_ms.to_bits(), b.mean_ms.to_bits(), "cell {cell}");
            assert_eq!(a.std_ms.to_bits(), b.std_ms.to_bits(), "cell {cell}");
        }
    });
}

#[test]
fn poisoned_worker_leaves_fault_campaigns_usable_and_deterministic() {
    // The fault-bearing runner drives a live BGP control plane per shard;
    // a worker panic mid-campaign must not leave any speaker, calendar or
    // pool state behind: the panic propagates, the pool stays reusable,
    // and a subsequent clean run is bitwise identical to one the
    // poisoning never disturbed.
    use rayon::prelude::*;
    use sixg::measure::campaign::CampaignConfig;
    use sixg::measure::exec::run_field;
    use sixg::measure::parallel::with_thread_count;
    use sixg::measure::scenario::Scenario;
    use sixg::measure::spec::ScenarioSpec;
    use sixg::measure::ExecBackend;

    let s = Scenario::from_spec(&ScenarioSpec::klagenfurt_flap()).expect("compiles");
    let config = CampaignConfig { seed: 2, passes: 1, sample_interval_s: 2.0 };
    let undisturbed = with_thread_count(4, || run_field(&s, config, ExecBackend::Event));

    with_thread_count(4, || {
        let poisoned = std::panic::catch_unwind(|| {
            (0..96u32)
                .into_par_iter()
                .map(|i| if i == 17 { panic!("injected worker failure at {i}") } else { i })
                .collect::<Vec<u32>>()
        });
        assert!(poisoned.is_err(), "worker panic must propagate to the caller");

        let after = run_field(&s, config, ExecBackend::Event);
        for cell in s.grid.cells() {
            let (a, b) = (undisturbed.stats(cell), after.stats(cell));
            assert_eq!(a.count, b.count, "cell {cell}");
            assert_eq!(a.mean_ms.to_bits(), b.mean_ms.to_bits(), "cell {cell}");
            assert_eq!(a.std_ms.to_bits(), b.std_ms.to_bits(), "cell {cell}");
        }
    });
}

#[test]
fn op_ascus_peering_is_purely_additive() {
    // Adding the peering never breaks pre-existing reachability.
    let before = scenario();
    let mut after = KlagenfurtScenario::paper(SEED);
    after.as_graph.add_peering(OP_AS, ASCUS_AS);
    after.refresh_routes();
    let pc_before = PathComputer::new(&before.topo, &before.as_graph);
    let pc_after = PathComputer::new(&after.topo, &after.as_graph);
    for &(cell, ti) in before.routes.keys() {
        let ue = before.ue[&cell];
        let targets = before.measurement_targets();
        let dst = targets[ti];
        assert!(pc_before.route(ue, dst).is_some());
        assert!(pc_after.route(ue, dst).is_some(), "{cell}->{ti} lost after peering");
    }
}
