//! Tier-1 contract of the declarative sweep subsystem: the committed sweep
//! file compiles to the documented matrix, the degenerate sweep is bitwise
//! a plain run, override-path and duplicate-target mistakes are rejected
//! with anchored errors, and the whole matrix is pool-size independent.

use serde::Value;
use sixg_measure::campaign::CampaignConfig;
use sixg_measure::exec::run_field;
use sixg_measure::parallel::with_thread_count;
use sixg_measure::scenario::Scenario;
use sixg_measure::spec::{ExecBackend, ScenarioSpec};
use sixg_measure::sweep::{AxisDef, BackendSelect, Sweep, SweepSpec, DEFAULT_REQUIREMENT_MS};

const COMMITTED_SWEEP: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/specs/sweeps/klagenfurt_cadence.json");

/// A Klagenfurt base trimmed to `passes` traversals, as JSON.
fn base_json(passes: u32) -> String {
    let mut spec = ScenarioSpec::klagenfurt();
    spec.campaign.passes = passes;
    spec.to_json()
}

fn sweep_spec(axes: Vec<AxisDef>) -> SweepSpec {
    SweepSpec {
        name: "tier1-sweep".into(),
        description: String::new(),
        base: "inline".into(),
        requirement_ms: DEFAULT_REQUIREMENT_MS,
        axes,
    }
}

/// The committed E20 sweep loads, resolves its base relative to its own
/// directory, and compiles to the documented 18-variant matrix in odometer
/// order (cadence slowest, seed fastest).
#[test]
fn committed_cadence_sweep_compiles_to_the_documented_matrix() {
    let sweep = Sweep::from_file(COMMITTED_SWEEP).expect("committed sweep loads");
    assert_eq!(sweep.spec.name, "klagenfurt_cadence");
    assert_eq!(sweep.base.name, "klagenfurt");
    assert_eq!(sweep.spec.variant_count(), 18);

    let variants = sweep.variants().expect("compiles");
    assert_eq!(variants.len(), 18);
    // Odometer order: seeds fastest, then backend, then cadence.
    assert_eq!(
        variants[0].label,
        "$.campaign.sample_interval_s=1.0 · $.backend=analytic · $.campaign.seed=1"
    );
    assert_eq!(variants[1].config.seed, 2);
    assert_eq!(variants[3].backend, ExecBackend::Event);
    assert_eq!(variants[6].config.sample_interval_s, 2.0);
    assert_eq!(
        variants[17].label,
        "$.campaign.sample_interval_s=4.0 · $.backend=event · $.campaign.seed=3"
    );
    // Every variant keeps the base's pass count — only the axes vary.
    for v in &variants {
        assert_eq!(v.config.passes, sweep.base.campaign.passes, "{}", v.label);
    }
}

/// Empty axes are the degenerate one-variant sweep, and both its base run
/// and its single variant are bitwise identical to a plain single-campaign
/// run of the base spec.
#[test]
fn degenerate_sweep_equals_plain_run_bitwise() {
    let sweep = Sweep::new(sweep_spec(Vec::new()), &base_json(1)).expect("valid sweep");
    let run = sweep.run().expect("runs");
    assert_eq!(run.report.variant_count, 1);

    let scenario = Scenario::from_spec(&sweep.base).expect("compiles");
    let config = CampaignConfig {
        seed: sweep.base.campaign.seed,
        sample_interval_s: sweep.base.campaign.sample_interval_s,
        passes: sweep.base.campaign.passes,
    };
    let plain = run_field(&scenario, config, ExecBackend::Analytic);
    for cell in scenario.grid.cells() {
        let want = plain.stats(cell);
        for (name, field) in [("base", &run.base_field), ("variant", &run.variant_fields[0])] {
            let got = field.stats(cell);
            assert_eq!(want.count, got.count, "{name} cell {cell} count");
            assert_eq!(want.mean_ms.to_bits(), got.mean_ms.to_bits(), "{name} cell {cell} mean");
            assert_eq!(want.std_ms.to_bits(), got.std_ms.to_bits(), "{name} cell {cell} std");
        }
    }
}

/// An override path that does not resolve in the base spec is rejected at
/// sweep construction, anchored at the axis that names it.
#[test]
fn unresolvable_override_path_is_anchored_to_its_axis() {
    let spec = sweep_spec(vec![
        AxisDef::Seeds { start: 1, count: 2 },
        AxisDef::Override { path: "$.campaign.cadence_s".into(), values: vec![Value::F64(1.0)] },
    ]);
    let err = Sweep::new(spec, &base_json(1)).unwrap_err();
    assert_eq!(err.path, "$.axes[1].path");
    assert!(err.message.contains("$.campaign.cadence_s"), "{err}");
}

/// Two axes sweeping the same spec element are rejected.
#[test]
fn duplicate_axis_targets_are_rejected() {
    let spec = sweep_spec(vec![
        AxisDef::Backend { select: BackendSelect::Both },
        AxisDef::Override { path: "$.backend".into(), values: vec![Value::String("event".into())] },
    ]);
    let errors = spec.validate();
    let e = errors.iter().find(|e| e.path == "$.axes[1]").expect("duplicate reported");
    assert!(e.message.contains("duplicate axis target"), "{e}");
}

/// The matrix is deterministic across pool sizes: the serialised report
/// (no wall times) is textually identical at 1 and 4 threads.
#[test]
fn sweep_matrix_is_pool_size_independent() {
    let make = || {
        Sweep::new(
            sweep_spec(vec![
                AxisDef::Override {
                    path: "$.ue.utilisation".into(),
                    values: vec![Value::F64(0.10), Value::F64(0.25)],
                },
                AxisDef::Seeds { start: 3, count: 2 },
            ]),
            &base_json(1),
        )
        .expect("valid sweep")
    };
    let a = with_thread_count(1, || make().run().expect("runs").report.to_json());
    let b = with_thread_count(4, || make().run().expect("runs").report.to_json());
    assert_eq!(a, b, "sweep report must not depend on the pool size");
}
