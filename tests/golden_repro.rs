//! Golden-value regression suite.
//!
//! Pins the key numbers behind the `repro_*` binaries — the gap exceedance,
//! the Table I hop count, the Klagenfurt campaign grand mean, and the
//! multi-seed sweep extrema — against committed expected values **to the
//! bit**. Any change to the RNG streams, distribution parameterisations,
//! routing metric, or accumulation order shows up here as a bit-exact diff,
//! not a tolerance-sized drift.
//!
//! The values are pinned for the CI target (x86_64-linux-gnu): IEEE-754
//! arithmetic is deterministic everywhere, but `ln`/`exp`/`powf` round
//! through the platform libm, so other platforms may differ in final bits.
//!
//! To regenerate after an *intentional* model change:
//!
//! ```text
//! cargo test --test golden_repro -- --ignored --nocapture
//! ```
//!
//! and paste the printed table over `EXPECTED`.

use sixg::core::gap::GapReport;
use sixg::core::requirements::campaign_reference_requirement;
use sixg::measure::campaign::{CampaignConfig, MobileCampaign};
use sixg::measure::exec::run_field;
use sixg::measure::klagenfurt::KlagenfurtScenario;
use sixg::measure::parallel::{seed_sweep, with_thread_count};
use sixg::measure::scenario::Scenario;
use sixg::measure::spec::ScenarioSpec;
use sixg::measure::ExecBackend;
use std::sync::OnceLock;

/// The shared reproduction seed (same as `sixg_bench::REPRO_SEED`).
const SEED: u64 = 0x6B6C_7531;

/// The dense campaign seed every figure binary uses.
const DENSE_SEED: u64 = 2;

/// Seeds of the pinned sweep.
const SWEEP_SEEDS: [u64; 3] = [1, 2, 3];

fn scenario() -> &'static KlagenfurtScenario {
    static S: OnceLock<KlagenfurtScenario> = OnceLock::new();
    S.get_or_init(|| KlagenfurtScenario::paper(SEED))
}

/// Computes every golden quantity, in a fixed order, from the same logic
/// the `repro_*` binaries run.
fn compute_goldens() -> Vec<(&'static str, f64)> {
    let s = scenario();

    // Figures 2-3 / repro_requirements: the dense campaign and its gap.
    let field = MobileCampaign::new(s, CampaignConfig::dense(DENSE_SEED)).run();
    let (mean_min, mean_max) = field.mean_extrema().expect("non-empty");
    let (std_min, std_max) = field.std_extrema().expect("non-empty");
    let gap = GapReport::analyse(&field, &campaign_reference_requirement());

    // Table I: the pinned traceroute.
    let trace = MobileCampaign::new(s, CampaignConfig::default()).table1_traceroute(0);

    // The multi-seed sweep (repro_fig2/3 stability check).
    let sweep = seed_sweep(s, CampaignConfig::default(), &SWEEP_SEEDS);
    let sweep_min = sweep.iter().map(|p| p.mean_range.0).fold(f64::INFINITY, f64::min);
    let sweep_max = sweep.iter().map(|p| p.mean_range.1).fold(f64::NEG_INFINITY, f64::max);

    let mut out = vec![
        ("dense_grand_mean_ms", field.grand_mean_ms()),
        ("dense_total_samples", field.total_samples() as f64),
        ("dense_mean_min_ms", mean_min.mean_ms),
        ("dense_mean_max_ms", mean_max.mean_ms),
        ("dense_std_min_ms", std_min.std_ms),
        ("dense_std_max_ms", std_max.std_ms),
        ("gap_exceedance_pct", gap.exceedance_pct),
        ("gap_best_cell_exceedance_pct", gap.best_cell_exceedance_pct),
        ("gap_compliant_cells", gap.compliant_cells as f64),
        ("table1_hop_count", trace.hop_count() as f64),
        ("table1_total_rtt_ms", trace.total_rtt_ms()),
        ("sweep_mean_range_min_ms", sweep_min),
        ("sweep_mean_range_max_ms", sweep_max),
    ];
    for p in &sweep {
        let name: &'static str = match p.seed {
            1 => "sweep_seed1_grand_mean_ms",
            2 => "sweep_seed2_grand_mean_ms",
            3 => "sweep_seed3_grand_mean_ms",
            _ => unreachable!("unpinned sweep seed"),
        };
        out.push((name, p.grand_mean_ms));
    }

    // E22 / repro_faults: the transit-flap fault campaign over the live
    // control plane (one pass keeps the suite fast; the in-outage detour
    // shift makes these bits sensitive to every layer from the BGP
    // message order down to the per-probe draws).
    let flap = Scenario::from_spec(&ScenarioSpec::klagenfurt_flap()).expect("flap spec compiles");
    let flap_field = run_field(
        &flap,
        CampaignConfig { seed: DENSE_SEED, passes: 1, sample_interval_s: 2.0 },
        ExecBackend::Event,
    );
    let flap_gap = GapReport::analyse(&flap_field, &campaign_reference_requirement());
    out.push(("flap_grand_mean_ms", flap_field.grand_mean_ms()));
    out.push(("flap_total_samples", flap_field.total_samples() as f64));
    out.push(("flap_exceedance_pct", flap_gap.exceedance_pct));
    out
}

/// The committed expectations: `(name, value bits, human-readable value)`.
/// The third column is redundant (it is `f64::from_bits` of the second) and
/// exists so diffs of this table stay reviewable.
const EXPECTED: &[(&str, u64, f64)] = &[
    // GOLDEN-TABLE-START
    ("dense_grand_mean_ms", 0x4052885dff661ae7, 74.1307371613617),
    ("dense_total_samples", 0x40ecefa000000000, 59261.0),
    ("dense_mean_min_ms", 0x404e6e7a95f93457, 60.86311602276026),
    ("dense_mean_max_ms", 0x405b6c0fe3a24180, 109.68846979947375),
    ("dense_std_min_ms", 0x3ffd870a77234639, 1.8454689649410183),
    ("dense_std_max_ms", 0x4047e1fe362e60f4, 47.76557042374216),
    ("gap_exceedance_pct", 0x4070ea757f3fa1a1, 270.6536858068085),
    ("gap_best_cell_exceedance_pct", 0x40698a193b77816c, 204.31558011380127),
    ("gap_compliant_cells", 0x0000000000000000, 0.0),
    ("table1_hop_count", 0x4024000000000000, 10.0),
    ("table1_total_rtt_ms", 0x404f5fb8ead0763d, 62.74783072642138),
    ("sweep_mean_range_min_ms", 0x404e45f4716d0729, 60.546522310482324),
    ("sweep_mean_range_max_ms", 0x405bab548c51a63f, 110.677035407768),
    ("sweep_seed1_grand_mean_ms", 0x40529927eebae418, 74.39306228877138),
    ("sweep_seed2_grand_mean_ms", 0x4052cd9dc5085bff, 75.2127544957766),
    ("sweep_seed3_grand_mean_ms", 0x40529ba4257cf03c, 74.4318937034704),
    ("flap_grand_mean_ms", 0x40503151bc888d22, 64.77061379752243),
    ("flap_total_samples", 0x40a0560000000000, 2091.0),
    ("flap_exceedance_pct", 0x406bfb4c575560d5, 223.85306898761215),
    // GOLDEN-TABLE-END
];

#[test]
fn golden_values_match_to_the_bit() {
    let computed = compute_goldens();
    assert_eq!(computed.len(), EXPECTED.len(), "golden table out of sync");
    for ((name, value), (exp_name, exp_bits, exp_value)) in computed.iter().zip(EXPECTED) {
        assert_eq!(name, exp_name, "golden table order changed");
        assert_eq!(
            value.to_bits(),
            *exp_bits,
            "{name}: computed {value:.17} != expected {exp_value:.17} \
             (bits {:#018x} vs {exp_bits:#018x})",
            value.to_bits(),
        );
    }
}

#[test]
fn golden_values_survive_parallel_execution() {
    // The same dense field, produced by the thread-pool runner at an
    // oversubscribed pool size, must hit the identical golden bits.
    let s = scenario();
    let field = with_thread_count(8, || {
        run_field(s, CampaignConfig::dense(DENSE_SEED), ExecBackend::Analytic)
    });
    let expect = |name: &str| EXPECTED.iter().find(|(n, ..)| *n == name).expect("golden name").1;
    assert_eq!(field.grand_mean_ms().to_bits(), expect("dense_grand_mean_ms"));
    assert_eq!((field.total_samples() as f64).to_bits(), expect("dense_total_samples"));
    let (mean_min, mean_max) = field.mean_extrema().expect("non-empty");
    assert_eq!(mean_min.mean_ms.to_bits(), expect("dense_mean_min_ms"));
    assert_eq!(mean_max.mean_ms.to_bits(), expect("dense_mean_max_ms"));
}

/// Prints the golden table in source form; run with `--ignored --nocapture`
/// after an intentional model change and paste over `EXPECTED`.
#[test]
#[ignore = "generator: prints the golden table for pasting into EXPECTED"]
fn regenerate_golden_table() {
    println!("    // GOLDEN-TABLE-START");
    for (name, value) in compute_goldens() {
        println!("    (\"{name}\", {:#018x}, {value:?}),", value.to_bits());
    }
    println!("    // GOLDEN-TABLE-END");
}
