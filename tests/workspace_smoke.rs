//! Workspace-wiring smoke test: the `sixg::prelude` re-exports must resolve
//! and compose across crate boundaries, and the measured Klagenfurt
//! scenario must be bit-for-bit deterministic per seed.

use sixg::measure::report::CampaignSummary;
use sixg::prelude::*;

#[test]
fn prelude_reexports_resolve_and_compose() {
    // sixg-geo via the prelude.
    let origin = GeoPoint::new(46.62, 14.31);
    let grid = GridSpec::new(origin, 6, 7, 1.0);
    let cell: CellId = grid.cells().next().expect("non-empty grid");
    assert_eq!(cell, CellId::new(0, 0));

    // sixg-netsim randomness via the prelude.
    let mut rng = SimRng::for_stream(StreamKey::root(1).with(2));
    let u = rng.unit();
    assert!((0.0..1.0).contains(&u));
    let _dt: SimDuration = SimDuration(1_000_000);

    // sixg-netsim topology + radio via the prelude.
    let mut topo = Topology::new();
    let gnb = topo.add_node(NodeKind::GnB, "gnb".to_string(), origin, Asn(1));
    let upf = topo.add_node(NodeKind::Upf, "upf".to_string(), origin, Asn(1));
    topo.add_link(gnb, upf, LinkParams::metro());
    let access = FiveGAccess::new(CellEnv::new(0.5, 0.2));
    assert!(access.mean_rtt_ms() > 0.0);

    // sixg-measure + sixg-core via the prelude: a tiny end-to-end slice.
    let scenario = KlagenfurtScenario::paper(7);
    let field: CellField = MobileCampaign::new(&scenario, CampaignConfig::default()).run();
    let stats: CellStats = field.stats(CellId::new(2, 1));
    assert!(stats.count > 0, "campaign produced samples for C2");
    let profile: RequirementProfile = ApplicationClass::ArGaming.profile();
    let gap = GapReport::analyse(&field, &profile);
    assert!(gap.exceedance_pct.is_finite());
}

#[test]
fn klagenfurt_paper_scenario_is_deterministic() {
    let a = KlagenfurtScenario::paper(42);
    let b = KlagenfurtScenario::paper(42);

    let field_a = MobileCampaign::new(&a, CampaignConfig::default()).run();
    let field_b = MobileCampaign::new(&b, CampaignConfig::default()).run();

    // Same seed ⇒ identical per-cell statistics, bit for bit.
    for cell in a.grid.cells() {
        let sa = field_a.stats(cell);
        let sb = field_b.stats(cell);
        assert_eq!(sa.count, sb.count, "cell {cell} count");
        assert_eq!(sa.mean_ms.to_bits(), sb.mean_ms.to_bits(), "cell {cell} mean");
        assert_eq!(sa.std_ms.to_bits(), sb.std_ms.to_bits(), "cell {cell} std");
    }

    // And an identical rendered summary (the JSON artefact downstream
    // tooling consumes).
    let summary_a = CampaignSummary::from_field(&field_a).to_json();
    let summary_b = CampaignSummary::from_field(&field_b).to_json();
    assert_eq!(summary_a, summary_b);

    // A different seed must not reproduce the same field bit-for-bit.
    let other = KlagenfurtScenario::paper(43);
    let field_other = MobileCampaign::new(&other, CampaignConfig::default()).run();
    assert_ne!(
        CampaignSummary::from_field(&field_other).to_json(),
        summary_a,
        "different seeds should differ"
    );
}
