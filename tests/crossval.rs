//! Backend cross-validation: the analytic sampler and the packet-level
//! event backend must agree — same shard list, same per-cell sample
//! counts, per-cell means within the documented statistical tolerance —
//! and the event backend must satisfy the same determinism contract the
//! analytic one is pinned to. `repro_crossval` runs the dense version of
//! this check as a CI gate; this suite keeps a lighter configuration in
//! the tier-1 loop.

use sixg::measure::campaign::CampaignConfig;
use sixg::measure::event_backend::{crossval_tolerance_ms, EventCampaign, CROSSVAL_GRAND_MEAN_TOL};
use sixg::measure::exec::run_field;
use sixg::measure::klagenfurt::KlagenfurtScenario;
use sixg::measure::parallel::with_thread_count;
use sixg::measure::ExecBackend;

const SEED: u64 = 0x6B6C_7531;

fn scenario() -> KlagenfurtScenario {
    KlagenfurtScenario::paper(SEED)
}

#[test]
fn backends_agree_on_per_cell_means_within_tolerance() {
    let s = scenario();
    let config = CampaignConfig { seed: 2, passes: 8, ..Default::default() };
    let analytic = run_field(&s, config, ExecBackend::Analytic);
    let event = run_field(&s, config, ExecBackend::Event);

    assert_eq!(analytic.total_samples(), event.total_samples());
    for cell in s.grid.cells() {
        let (a, e) = (analytic.stats(cell), event.stats(cell));
        assert_eq!(a.count, e.count, "cell {cell}: shard lists must match");
        if a.is_masked() {
            assert!(e.is_masked(), "cell {cell}: masking must agree");
            continue;
        }
        // The documented cross-validation tolerance (see DESIGN.md
        // "Execution backends"), shared with the `repro_crossval` CI gate.
        let tol = crossval_tolerance_ms(&a, &e);
        assert!(
            (a.mean_ms - e.mean_ms).abs() <= tol,
            "cell {cell}: analytic {} vs event {} exceeds tolerance {tol}",
            a.mean_ms,
            e.mean_ms
        );
    }

    let (ga, ge) = (analytic.grand_mean_ms(), event.grand_mean_ms());
    assert!((ga - ge).abs() / ga < CROSSVAL_GRAND_MEAN_TOL, "grand means {ga} vs {ge}");
}

#[test]
fn event_backend_is_bitwise_deterministic_across_pool_sizes() {
    let s = scenario();
    let config = CampaignConfig { seed: 7, passes: 2, ..Default::default() };
    let seq = EventCampaign::new(&s, config).run();
    for &threads in &[1usize, 4] {
        let par = with_thread_count(threads, || run_field(&s, config, ExecBackend::Event));
        for cell in s.grid.cells() {
            let (x, y) = (seq.stats(cell), par.stats(cell));
            assert_eq!(x.count, y.count, "{threads} threads: cell {cell} count");
            assert_eq!(
                x.mean_ms.to_bits(),
                y.mean_ms.to_bits(),
                "{threads} threads: cell {cell} mean"
            );
            assert_eq!(
                x.std_ms.to_bits(),
                y.std_ms.to_bits(),
                "{threads} threads: cell {cell} std"
            );
        }
    }
}

#[test]
fn event_backend_repeats_bitwise_within_a_pool_size() {
    let s = scenario();
    let config = CampaignConfig { seed: 3, passes: 1, ..Default::default() };
    let a = with_thread_count(4, || run_field(&s, config, ExecBackend::Event));
    let b = with_thread_count(4, || run_field(&s, config, ExecBackend::Event));
    for cell in s.grid.cells() {
        assert_eq!(a.stats(cell).mean_ms.to_bits(), b.stats(cell).mean_ms.to_bits(), "{cell}");
    }
}
