//! Cross-crate integration: the full paper pipeline from scenario build
//! through campaign, gap analysis, and all three Section-V strategies.

use sixg::core::detour::DetourAnalysis;
use sixg::core::gap::GapReport;
use sixg::core::orchestrator;
use sixg::core::requirements::campaign_reference_requirement;
use sixg::measure::campaign::{CampaignConfig, MobileCampaign};
use sixg::measure::klagenfurt::KlagenfurtScenario;
use sixg::measure::wired::{mobile_wired_factor, WiredCampaign};
use std::sync::OnceLock;

const SEED: u64 = 0x6B6C_7531;

fn scenario() -> &'static KlagenfurtScenario {
    static S: OnceLock<KlagenfurtScenario> = OnceLock::new();
    S.get_or_init(|| KlagenfurtScenario::paper(SEED))
}

fn dense_field() -> &'static sixg::measure::aggregate::CellField {
    static F: OnceLock<sixg::measure::aggregate::CellField> = OnceLock::new();
    F.get_or_init(|| MobileCampaign::new(scenario(), CampaignConfig::dense(2)).run())
}

#[test]
fn campaign_to_gap_pipeline() {
    let gap = GapReport::analyse(dense_field(), &campaign_reference_requirement());
    assert!((gap.exceedance_pct - 270.0).abs() < 15.0, "exceedance {}", gap.exceedance_pct);
    assert_eq!(gap.compliant_cells, 0);
    assert_eq!(gap.reported_cells, 33);
}

#[test]
fn traceroute_to_detour_pipeline() {
    let campaign = MobileCampaign::new(scenario(), CampaignConfig::default());
    let trace = campaign.table1_traceroute(0);
    let detour = DetourAnalysis::from_trace(&trace);
    assert_eq!(detour.hop_count, 10);
    assert!((detour.outbound_km - 2544.0).abs() < 60.0, "outbound {}", detour.outbound_km);
    assert!(detour.direct_km < 5.0);
}

#[test]
fn wired_to_factor_pipeline() {
    let wired = WiredCampaign::new(scenario(), 2).run();
    let factor = mobile_wired_factor(dense_field().grand_mean_ms(), &wired);
    assert!((6.0..=8.5).contains(&factor), "factor {factor}");
}

#[test]
fn all_strategies_improve_the_measured_scenario() {
    let reports = orchestrator::evaluate_all(SEED);
    assert_eq!(reports.len(), 3);
    for r in &reports {
        assert!(
            r.improved < r.baseline,
            "{} did not improve: {} -> {}",
            r.strategy,
            r.baseline,
            r.improved
        );
    }
    // The paper's ordering: peering and UPF cut >85%, CPF >50%.
    assert!(reports[0].reduction_pct > 85.0);
    assert!(reports[1].reduction_pct > 85.0);
    assert!(reports[2].reduction_pct > 50.0);
}

#[test]
fn campaign_field_masks_exactly_the_nine_skipped_cells() {
    let field = dense_field();
    let masked: Vec<String> =
        field.all_stats().iter().filter(|s| s.is_masked()).map(|s| s.cell.label()).collect();
    assert_eq!(masked.len(), 9);
    for label in ["A1", "F1", "F2", "A6", "F6", "A7", "B7", "E7", "F7"] {
        assert!(masked.contains(&label.to_string()), "{label} should be masked");
    }
}

#[test]
fn scenario_is_reproducible_across_builds() {
    let a = KlagenfurtScenario::paper(SEED);
    let b = KlagenfurtScenario::paper(SEED);
    assert_eq!(a.topo.node_count(), b.topo.node_count());
    for cell in &a.included {
        let ea = a.access_for(*cell).env;
        let eb = b.access_for(*cell).env;
        assert_eq!(ea.load.to_bits(), eb.load.to_bits(), "cell {cell}");
        assert_eq!(ea.interference.to_bits(), eb.interference.to_bits(), "cell {cell}");
    }
}
