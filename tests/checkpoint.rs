//! Tier-1 contract of checkpointed sweep execution: the kill/resume/merge
//! torture suite.
//!
//! The store's promise is *bitwise transparency* — a sweep that is killed
//! at any checkpoint boundary, at any checkpoint interval, on any thread
//! pool, resumes into a report byte-identical to a run that never died;
//! and disjoint shard stores fold back into that same report. Every test
//! here compares serialized `SweepReport`s (`to_json()`, which carries no
//! wall times) for *equality of every byte*.

use sixg_measure::parallel::with_thread_count;
use sixg_measure::spec::ScenarioSpec;
use sixg_measure::store::{
    merge_stores, run_checkpointed, CheckpointConfig, CheckpointError, CheckpointOutcome,
};
use sixg_measure::sweep::{AxisDef, Sweep, SweepSpec, DEFAULT_REQUIREMENT_MS, MAX_VARIANTS};
use sixg_netsim::rng::splitmix64;
use std::path::{Path, PathBuf};

const COMMITTED_SWEEP: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/specs/sweeps/klagenfurt_cadence.json");

/// A Klagenfurt base trimmed to `passes` traversals, as JSON.
fn base_json(passes: u32) -> String {
    let mut spec = ScenarioSpec::klagenfurt();
    spec.campaign.passes = passes;
    spec.to_json()
}

fn sweep_spec(name: &str, axes: Vec<AxisDef>) -> SweepSpec {
    SweepSpec {
        name: name.into(),
        description: String::new(),
        base: "inline".into(),
        requirement_ms: DEFAULT_REQUIREMENT_MS,
        axes,
    }
}

/// The torture sweep: small enough for a fuzz loop (1 pass, 2 cadences ×
/// 2 seeds = 4 variants + base), large enough that checkpoint boundaries
/// land inside runs, between runs, and across the whole work list.
fn torture_sweep() -> Sweep {
    let spec = sweep_spec(
        "torture",
        vec![
            AxisDef::Override {
                path: "$.campaign.sample_interval_s".into(),
                values: vec![serde::Value::F64(2.0), serde::Value::F64(4.0)],
            },
            AxisDef::Seeds { start: 11, count: 2 },
        ],
    );
    Sweep::new(spec, &base_json(1)).expect("torture sweep is valid")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sixg-ckpt-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `sweep` checkpointed to completion in one go and returns the
/// report JSON.
fn run_to_completion(sweep: &Sweep, dir: &Path, interval: usize, pool: usize) -> String {
    let mut cfg = CheckpointConfig::new(dir.to_path_buf());
    cfg.interval = interval;
    let outcome =
        with_thread_count(pool, || run_checkpointed(sweep, &cfg)).expect("checkpointed run");
    match outcome {
        CheckpointOutcome::Complete(run) => run.report.to_json(),
        other => panic!("expected Complete, got {other:?}"),
    }
}

/// The kill/resume property, fuzzed: 16 deterministic (kill position,
/// interval, pool size) triples — intervals {7, 64, 256}, pools {1, 2, 4},
/// kill anywhere in the work list including mid-shard-range — and each
/// resumed report must equal the uninterrupted one byte for byte.
#[test]
fn fuzzed_kill_resume_is_bitwise_identical() {
    let sweep = torture_sweep();
    let clean = sweep.run().expect("clean run").report.to_json();
    // Pool-size independence of the clean checkpointed run itself.
    for pool in [1usize, 2, 4] {
        let dir = scratch(&format!("clean-p{pool}"));
        assert_eq!(
            run_to_completion(&sweep, &dir, 64, pool),
            clean,
            "uninterrupted checkpointed run must match Sweep::run at pool {pool}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    let intervals = [7usize, 64, 256];
    let pools = [1usize, 2, 4];
    for case in 0u64..16 {
        let h = splitmix64(0xC0FFEE ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let interval = intervals[(h % 3) as usize];
        let pool = pools[((h >> 8) % 3) as usize];
        let dir = scratch(&format!("fuzz-{case}"));

        // First invocation: killed at a fuzzed cursor position.
        let mut cfg = CheckpointConfig::new(dir.clone());
        cfg.interval = interval;
        // 165 items in the torture sweep's work list (5 runs × 33
        // traversed cells × 1 pass); kill in [1, 164].
        let kill_at = 1 + (h >> 16) % 164;
        cfg.stop_after_items = Some(kill_at);
        let outcome =
            with_thread_count(pool, || run_checkpointed(&sweep, &cfg)).expect("killed run");
        match outcome {
            CheckpointOutcome::Interrupted { done_items, total_items } => {
                assert_eq!(done_items, kill_at, "cursor must sit exactly at the kill point");
                assert_eq!(total_items, 165);
            }
            other => panic!("case {case}: expected Interrupted, got {other:?}"),
        }

        // Second invocation, same store: must resume into identical bits.
        cfg.stop_after_items = None;
        let outcome =
            with_thread_count(pool, || run_checkpointed(&sweep, &cfg)).expect("resumed run");
        let resumed = match outcome {
            CheckpointOutcome::Complete(run) => run.report.to_json(),
            other => panic!("case {case}: expected Complete, got {other:?}"),
        };
        assert_eq!(
            resumed, clean,
            "case {case}: kill at {kill_at}, interval {interval}, pool {pool} must be transparent"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Two kills at different cursors before the final resume — the store must
/// survive repeated interruption, not just one.
#[test]
fn double_kill_then_resume_is_bitwise_identical() {
    let sweep = torture_sweep();
    let clean = sweep.run().expect("clean run").report.to_json();
    let dir = scratch("double-kill");
    let mut cfg = CheckpointConfig::new(dir.clone());
    cfg.interval = 13;
    for kill_at in [20u64, 71] {
        cfg.stop_after_items = Some(kill_at);
        match run_checkpointed(&sweep, &cfg).expect("killed run") {
            CheckpointOutcome::Interrupted { done_items, .. } => assert_eq!(done_items, kill_at),
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }
    cfg.stop_after_items = None;
    match run_checkpointed(&sweep, &cfg).expect("resumed run") {
        CheckpointOutcome::Complete(run) => assert_eq!(run.report.to_json(), clean),
        other => panic!("expected Complete, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Re-invoking a completed store re-reads the spilled blobs instead of
/// recomputing, and still produces the identical report.
#[test]
fn resume_after_complete_is_idempotent() {
    let sweep = torture_sweep();
    let dir = scratch("idempotent");
    let first = run_to_completion(&sweep, &dir, 64, 2);
    let again = run_to_completion(&sweep, &dir, 64, 2);
    assert_eq!(first, again);
    assert_eq!(first, sweep.run().expect("clean run").report.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Three disjoint shard stores — sizes differing by one, run mid-kill on
/// one shard for good measure — merge into the unsharded report bitwise.
#[test]
fn three_shard_merge_bit_reproduces_unsharded() {
    let sweep = torture_sweep();
    let clean = sweep.run().expect("clean run").report.to_json();
    let dirs: Vec<PathBuf> = (0..3).map(|i| scratch(&format!("shard-{i}"))).collect();
    for (i, dir) in dirs.iter().enumerate() {
        let mut cfg = CheckpointConfig::new(dir.clone());
        cfg.shard_index = i as u32;
        cfg.shard_count = 3;
        cfg.interval = 17;
        if i == 1 {
            // Kill shard 1 mid-way first; its resume must be transparent
            // through the merge as well.
            cfg.stop_after_items = Some(5);
            match run_checkpointed(&sweep, &cfg).expect("killed shard") {
                CheckpointOutcome::Interrupted { .. } => {}
                other => panic!("expected Interrupted, got {other:?}"),
            }
            cfg.stop_after_items = None;
        }
        match run_checkpointed(&sweep, &cfg).expect("shard run") {
            CheckpointOutcome::ShardComplete { shard_index, shard_count, .. } => {
                assert_eq!((shard_index, shard_count), (i as u32, 3));
            }
            other => panic!("expected ShardComplete, got {other:?}"),
        }
    }
    let merged = merge_stores(&sweep, &dirs).expect("merge");
    assert_eq!(merged.report.to_json(), clean);
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Merge refuses incomplete shard sets (naming the missing run), shards of
/// a different sweep, and incomplete shards.
#[test]
fn merge_rejects_gaps_foreign_stores_and_incomplete_shards() {
    let sweep = torture_sweep();
    let dirs: Vec<PathBuf> = (0..2).map(|i| scratch(&format!("gap-{i}"))).collect();
    for (i, dir) in dirs.iter().enumerate() {
        let mut cfg = CheckpointConfig::new(dir.clone());
        cfg.shard_index = i as u32;
        cfg.shard_count = 2;
        run_checkpointed(&sweep, &cfg).expect("shard run");
    }

    // Gap: only shard 1 of 2 offered.
    let err = merge_stores(&sweep, &dirs[1..]).expect_err("gap must be rejected");
    let msg = err.to_string();
    assert!(msg.contains("no shard store covers run 0"), "{msg}");

    // Foreign store: same shard geometry, different sweep content.
    let other_spec = sweep_spec(
        "torture",
        vec![
            AxisDef::Override {
                path: "$.campaign.sample_interval_s".into(),
                values: vec![serde::Value::F64(1.0), serde::Value::F64(4.0)],
            },
            AxisDef::Seeds { start: 11, count: 2 },
        ],
    );
    let other = Sweep::new(other_spec, &base_json(1)).expect("other sweep is valid");
    let err = merge_stores(&other, &dirs).expect_err("foreign store must be rejected");
    let msg = err.to_string();
    assert!(msg.contains("spec hash mismatch"), "{msg}");
    assert!(msg.contains("manifest.json"), "error must be path-anchored: {msg}");

    // Incomplete shard: killed mid-way, never resumed.
    let part = scratch("gap-part");
    let mut cfg = CheckpointConfig::new(part.clone());
    cfg.shard_index = 0;
    cfg.shard_count = 2;
    cfg.stop_after_items = Some(3);
    run_checkpointed(&sweep, &cfg).expect("killed shard");
    let err = merge_stores(&sweep, &[part.clone(), dirs[1].clone()])
        .expect_err("incomplete shard must be rejected");
    let msg = err.to_string();
    assert!(msg.contains("incomplete"), "{msg}");

    for dir in dirs.iter().chain([&part]) {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Overlapping run ranges (2-shard and 3-shard stores of the same sweep
/// mixed) are rejected with both owners named.
#[test]
fn merge_rejects_overlapping_shard_ranges() {
    let sweep = torture_sweep();
    let a = scratch("overlap-a");
    let b = scratch("overlap-b");
    for (dir, count) in [(&a, 2u32), (&b, 3u32)] {
        let mut cfg = CheckpointConfig::new((*dir).clone());
        cfg.shard_index = 0;
        cfg.shard_count = count;
        run_checkpointed(&sweep, &cfg).expect("shard run");
    }
    let err = merge_stores(&sweep, &[a.clone(), b.clone()]).expect_err("overlap");
    let msg = err.to_string();
    assert!(msg.contains("overlap"), "{msg}");
    for dir in [&a, &b] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// A store written for one sweep refuses to resume another (the manifest
/// check), and a doctored cursor is caught by the work-list cross-check.
#[test]
fn resume_rejects_a_store_of_a_different_sweep() {
    let sweep = torture_sweep();
    let dir = scratch("foreign-resume");
    let mut cfg = CheckpointConfig::new(dir.clone());
    cfg.stop_after_items = Some(10);
    run_checkpointed(&sweep, &cfg).expect("killed run");

    let other_spec = sweep_spec("torture", vec![AxisDef::Seeds { start: 99, count: 4 }]);
    let other = Sweep::new(other_spec, &base_json(1)).expect("other sweep is valid");
    let err = match run_checkpointed(&other, &CheckpointConfig::new(dir.clone())) {
        Err(CheckpointError::Store(e)) => e,
        other => panic!("expected a store error, got {other:?}"),
    };
    assert!(err.message.contains("spec hash mismatch"), "{err}");
    assert!(err.path.contains("manifest.json"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The in-memory cap stays (with an error that now names the escape
/// hatch), and the unbounded constructors genuinely lift it.
#[test]
fn cap_lift_applies_only_to_unbounded_loads() {
    let spec =
        sweep_spec("mega", vec![AxisDef::Seeds { start: 0, count: (MAX_VARIANTS + 1) as u32 }]);
    assert_eq!(spec.variant_count(), MAX_VARIANTS + 1);

    let err = Sweep::new(spec.clone(), &base_json(1)).expect_err("over the in-memory cap");
    let msg = err.to_string();
    assert!(msg.contains("cap"), "{msg}");
    assert!(msg.contains("--checkpoint"), "the error must name the escape hatch: {msg}");

    let sweep = Sweep::new_unbounded(spec, &base_json(1)).expect("unbounded load lifts the cap");
    assert_eq!(sweep.spec.variant_count(), MAX_VARIANTS + 1);

    // An invalid sweep stays invalid even unbounded — the cap lift must
    // not swallow real validation errors.
    let bad = sweep_spec("bad", vec![AxisDef::Seeds { start: 0, count: 0 }]);
    assert!(Sweep::new_unbounded(bad, &base_json(1)).is_err());
}

/// Satellite of the merge-algebra property: checkpointed, 2-shard-merged
/// and streaming execution of the *committed* cadence sweep's matrix
/// (base trimmed to 2 passes for test runtime) all agree bitwise.
#[test]
fn committed_cadence_matrix_checkpoint_and_merge_match_streaming() {
    let text = std::fs::read_to_string(COMMITTED_SWEEP).expect("committed sweep file");
    let spec = SweepSpec::from_json(&text).expect("committed sweep parses");
    let sweep = Sweep::new(spec, &base_json(2)).expect("trimmed committed sweep");
    assert_eq!(sweep.spec.variant_count(), 18);

    let streaming = sweep.run().expect("streaming run").report.to_json();

    let dir = scratch("committed-ckpt");
    assert_eq!(run_to_completion(&sweep, &dir, 256, 4), streaming);
    let _ = std::fs::remove_dir_all(&dir);

    let dirs: Vec<PathBuf> = (0..2).map(|i| scratch(&format!("committed-s{i}"))).collect();
    for (i, dir) in dirs.iter().enumerate() {
        let mut cfg = CheckpointConfig::new(dir.clone());
        cfg.shard_index = i as u32;
        cfg.shard_count = 2;
        run_checkpointed(&sweep, &cfg).expect("shard run");
    }
    let merged = merge_stores(&sweep, &dirs).expect("merge");
    assert_eq!(merged.report.to_json(), streaming);
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}
