//! Integration suite for the declarative scenario subsystem.
//!
//! Three contracts, end to end over the *committed files* in `specs/`:
//!
//! 1. **Round-trip stability** — serialise → deserialise → build is
//!    bitwise-stable: a spec that went through JSON text compiles into a
//!    scenario with identical calibration and density bits.
//! 2. **Scenario parity** — the Klagenfurt scenario compiled from the spec
//!    *file on disk* reproduces the golden repro numbers bit for bit, on
//!    the sequential runner and on the thread pool at 1 and 4 workers
//!    (the CI thread matrix re-runs the whole suite under
//!    `RAYON_NUM_THREADS={1,4}` as well).
//! 3. **Malformed specs fail usefully** — overlapping cells, negative
//!    delays, unknown hop references and friends are rejected with errors
//!    that name the JSON path and say what to fix.

use sixg::measure::campaign::CampaignConfig;
use sixg::measure::exec::run_field;
use sixg::measure::parallel::with_thread_count;
use sixg::measure::scenario::{KeyScheme, Scenario};
use sixg::measure::spec::{ExecBackend, ScenarioSpec};

fn spec_path(name: &str) -> String {
    format!("{}/specs/{name}.json", env!("CARGO_MANIFEST_DIR"))
}

fn load(name: &str) -> ScenarioSpec {
    let text = std::fs::read_to_string(spec_path(name)).expect("committed spec file readable");
    ScenarioSpec::from_json(&text).expect("committed spec file parses")
}

/// Golden bits copied from `tests/golden_repro.rs` — the dense Klagenfurt
/// campaign numbers every repro binary pins.
const GOLDEN_GRAND_MEAN_BITS: u64 = 0x4052885dff661ae7;
const GOLDEN_TOTAL_SAMPLES: u64 = 59261;
const GOLDEN_MEAN_MIN_BITS: u64 = 0x404e6e7a95f93457;
const GOLDEN_MEAN_MAX_BITS: u64 = 0x405b6c0fe3a24180;

#[test]
fn committed_specs_parse_validate_and_compile() {
    for name in ["klagenfurt", "skopje", "megacity", "continental"] {
        let spec = load(name);
        assert_eq!(spec.name, name);
        let errors = spec.validate();
        assert!(errors.is_empty(), "{name}: {errors:?}");
        let scenario = Scenario::from_spec(&spec).expect("compiles");
        assert!(!scenario.included.is_empty(), "{name} traverses cells");
        match scenario.key_scheme {
            // Packable grids materialise one calibrated access model per
            // traversed cell.
            KeyScheme::Legacy => {
                assert_eq!(scenario.access.len(), scenario.included.len(), "{name} calibrated");
            }
            // Mega-grids skip per-cell materialisation by design; samples
            // come from the columnar target-field path instead.
            KeyScheme::Wide => {
                assert!(scenario.access.is_empty(), "{name}: wide scheme has no per-cell models");
                assert!(scenario.ue.is_empty(), "{name}: wide scheme has no per-cell UEs");
            }
        }
    }
}

#[test]
fn klagenfurt_spec_file_reproduces_golden_numbers_across_pool_sizes() {
    // The spec's own seed policy IS the dense golden configuration:
    // scenario seed 0x6B6C_7531, campaign seed 2, 30 passes.
    let spec = load("klagenfurt");
    assert_eq!(spec.seed, 0x6B6C_7531);
    let scenario = Scenario::from_spec(&spec).expect("compiles");
    let config = CampaignConfig {
        seed: spec.campaign.seed,
        sample_interval_s: spec.campaign.sample_interval_s,
        passes: spec.campaign.passes,
    };

    let check = (|field: sixg::measure::CellField| {
        assert_eq!(field.grand_mean_ms().to_bits(), GOLDEN_GRAND_MEAN_BITS);
        assert_eq!(field.total_samples(), GOLDEN_TOTAL_SAMPLES);
        let (min, max) = field.mean_extrema().expect("non-empty");
        assert_eq!(min.mean_ms.to_bits(), GOLDEN_MEAN_MIN_BITS);
        assert_eq!(max.mean_ms.to_bits(), GOLDEN_MEAN_MAX_BITS);
    }) as fn(sixg::measure::CellField);

    // Sequential, then the thread pool pinned to 1 and 4 workers.
    check(sixg::measure::MobileCampaign::new(&scenario, config).run());
    check(with_thread_count(1, || run_field(&scenario, config, ExecBackend::Analytic)));
    check(with_thread_count(4, || run_field(&scenario, config, ExecBackend::Analytic)));
}

#[test]
fn serialize_deserialize_build_is_bitwise_stable() {
    for name in ["klagenfurt", "skopje", "megacity"] {
        let spec = load(name);
        let round_tripped =
            ScenarioSpec::from_json(&spec.to_json()).expect("re-serialised spec parses");
        assert_eq!(round_tripped, spec, "{name}: value-level round trip");

        let a = Scenario::from_spec(&spec).expect("compiles");
        let b = Scenario::from_spec(&round_tripped).expect("compiles");
        assert_eq!(a.included, b.included, "{name}: traversal set");
        for cell in a.grid.cells() {
            assert_eq!(
                a.density.density(cell).to_bits(),
                b.density.density(cell).to_bits(),
                "{name}: density bits at {cell}"
            );
        }
        for &cell in &a.included {
            assert_eq!(
                a.access[&cell].env.load.to_bits(),
                b.access[&cell].env.load.to_bits(),
                "{name}: calibrated load bits at {cell}"
            );
            assert_eq!(
                a.access[&cell].env.interference.to_bits(),
                b.access[&cell].env.interference.to_bits(),
                "{name}: calibrated interference bits at {cell}"
            );
        }
    }
}

/// Patches one committed spec with a JSON-text substitution and returns the
/// resulting validation/parse failure.
fn break_spec(name: &str, from: &str, to: &str) -> Vec<String> {
    let text = std::fs::read_to_string(spec_path(name)).expect("readable");
    assert!(text.contains(from), "fixture drift: {from:?} not in specs/{name}.json");
    let broken = text.replace(from, to);
    match ScenarioSpec::from_json(&broken) {
        Err(e) => vec![e.to_string()],
        Ok(spec) => spec.validate().iter().map(|e| e.to_string()).collect(),
    }
}

#[test]
fn unknown_hop_reference_is_rejected_with_path_and_name() {
    let errors = break_spec("klagenfurt", "\"a\": \"op-cgnat-klu\"", "\"a\": \"op-cgnat-typo\"");
    assert!(
        errors.iter().any(|e| e.contains("$.links[0].a") && e.contains("op-cgnat-typo")),
        "{errors:?}"
    );
}

#[test]
fn negative_delay_is_rejected() {
    let errors = break_spec(
        "klagenfurt",
        "\"kind\": \"constant\",\n        \"ms\": 2.0",
        "\"kind\": \"constant\",\n        \"ms\": -2.0",
    );
    assert!(errors.iter().any(|e| e.contains("extra") && e.contains("non-negative")), "{errors:?}");
}

#[test]
fn overlapping_skip_entries_are_rejected() {
    let errors = break_spec(
        "skopje",
        "\"skipped_cells\": [\n    \"A1\",",
        "\"skipped_cells\": [\n    \"A1\",\n    \"A1\",",
    );
    assert!(
        errors.iter().any(|e| e.contains("skipped_cells") && e.contains("overlapping")),
        "{errors:?}"
    );
}

#[test]
fn unknown_backend_is_rejected_with_path() {
    let errors = break_spec("klagenfurt", "\"backend\": \"analytic\"", "\"backend\": \"quantum\"");
    assert!(errors.iter().any(|e| e.contains("$.backend") && e.contains("quantum")), "{errors:?}");
    // And the error names the accepted values, so it is actionable.
    assert!(errors.iter().any(|e| e.contains("analytic or event")), "{errors:?}");
}

#[test]
fn zero_sample_interval_is_rejected_with_path() {
    let errors =
        break_spec("klagenfurt", "\"sample_interval_s\": 2.0", "\"sample_interval_s\": 0.0");
    assert!(
        errors.iter().any(|e| e.contains("$.campaign.sample_interval_s") && e.contains("positive")),
        "{errors:?}"
    );
}

#[test]
fn event_backend_spec_compiles_and_runs_deterministically() {
    // Flip the committed Klagenfurt spec to the event backend: it must
    // validate, compile, and produce identical fields at pool sizes 1/4.
    let text = std::fs::read_to_string(spec_path("klagenfurt")).expect("readable");
    let flipped = text.replace("\"backend\": \"analytic\"", "\"backend\": \"event\"");
    assert_ne!(text, flipped, "fixture drift: backend field missing from committed spec");
    let spec = ScenarioSpec::from_json(&flipped).expect("parses");
    assert!(spec.validate().is_empty());
    assert_eq!(spec.backend, "event");

    let scenario = Scenario::from_spec(&spec).expect("compiles");
    let config = CampaignConfig { passes: 2, ..Default::default() };
    let backend = sixg::measure::spec::parse_backend(&spec.backend).expect("parses");
    let a = with_thread_count(1, || run_field(&scenario, config, backend));
    let b = with_thread_count(4, || run_field(&scenario, config, backend));
    for cell in scenario.grid.cells() {
        assert_eq!(a.stats(cell).mean_ms.to_bits(), b.stats(cell).mean_ms.to_bits(), "{cell}");
        assert_eq!(a.stats(cell).count, b.stats(cell).count, "{cell}");
    }
}

#[test]
fn type_errors_carry_json_paths() {
    let errors = break_spec("megacity", "\"cols\": 10", "\"cols\": \"ten\"");
    assert!(
        errors.iter().any(|e| e.contains("$.grid.cols") && e.contains("integer")),
        "{errors:?}"
    );
}

#[test]
fn out_of_range_utilisation_is_rejected() {
    let errors = break_spec("skopje", "\"utilisation\": 0.65", "\"utilisation\": 1.65");
    assert!(errors.iter().any(|e| e.contains("utilisation") && e.contains("[0, 1)")), "{errors:?}");
}

#[test]
fn truncated_json_reports_position() {
    let text = std::fs::read_to_string(spec_path("klagenfurt")).expect("readable");
    let err = ScenarioSpec::from_json(&text[..text.len() / 2]).expect_err("must fail");
    assert!(err.message.contains("invalid JSON"), "{err}");
    assert!(err.message.contains("line"), "{err}");
}
