//! # sixg — analytical 6G edge-AI infrastructure simulator
//!
//! Facade crate re-exporting the whole workspace, which reproduces
//! *6G Infrastructures for Edge AI: An Analytical Perspective*
//! (Horvath et al., IPPS 2025) as a runnable Rust system.
//!
//! The sixty-second tour — build the measured Klagenfurt scenario, run a
//! campaign, and check the paper's headline gap:
//!
//! ```
//! use sixg::measure::klagenfurt::KlagenfurtScenario;
//! use sixg::measure::campaign::{CampaignConfig, MobileCampaign};
//! use sixg::core::gap::GapReport;
//! use sixg::core::requirements::campaign_reference_requirement;
//!
//! let scenario = KlagenfurtScenario::paper(42);
//! let field = MobileCampaign::new(&scenario, CampaignConfig::default()).run();
//! let gap = GapReport::analyse(&field, &campaign_reference_requirement());
//!
//! // The paper: measured RTL exceeds the 20 ms requirement by ≈270 %.
//! assert!(gap.exceedance_pct > 200.0);
//! assert_eq!(gap.compliant_cells, 0);
//!
//! // Table I: a local request takes ten hops.
//! let trace = MobileCampaign::new(&scenario, CampaignConfig::default())
//!     .table1_traceroute(0);
//! assert_eq!(trace.hop_count(), 10);
//! ```
//!
//! And the recommendation engines (Section V) applied to the same world:
//!
//! ```
//! use sixg::core::recommend::peering::{evaluate, PeeringDepth};
//!
//! let report = evaluate(42, PeeringDepth::LocalIsp);
//! assert_eq!(report.before.hops, 10);
//! assert!(report.after.hops <= 3);
//! assert!(report.after.wire_rtt_ms < report.before.wire_rtt_ms / 5.0);
//! ```
//!
//! See the repository README for the architecture overview and DESIGN.md /
//! EXPERIMENTS.md for the experiment index and paper-vs-measured record.

pub use sixg_core as core;
pub use sixg_geo as geo;
pub use sixg_measure as measure;
pub use sixg_netsim as netsim;
pub use sixg_workloads as workloads;

/// The most commonly used types, for `use sixg::prelude::*`.
pub mod prelude {
    pub use sixg_core::gap::GapReport;
    pub use sixg_core::orchestrator::StrategyReport;
    pub use sixg_core::requirements::{ApplicationClass, RequirementProfile};
    pub use sixg_geo::{CellId, GeoPoint, GridSpec};
    pub use sixg_measure::aggregate::{CellField, CellStats};
    pub use sixg_measure::campaign::{CampaignConfig, MobileCampaign};
    pub use sixg_measure::klagenfurt::KlagenfurtScenario;
    pub use sixg_measure::scenario::{Scenario, TargetField};
    pub use sixg_measure::spec::{ScenarioSpec, SpecError};
    pub use sixg_measure::store::{
        merge_stores, run_checkpointed, CheckpointConfig, CheckpointOutcome, CheckpointStore,
    };
    pub use sixg_measure::sweep::{Sweep, SweepReport, SweepSpec};
    pub use sixg_netsim::radio::{AccessModel, CellEnv, FiveGAccess, SixGAccess, WiredAccess};
    pub use sixg_netsim::rng::{SimRng, StreamKey};
    pub use sixg_netsim::routing::{AsGraph, PathComputer};
    pub use sixg_netsim::topology::{Asn, LinkParams, NodeId, NodeKind, Topology};
    pub use sixg_netsim::{SimDuration, SimTime};
}
